package fl

import (
	"encoding/gob"
	"math"
	"strings"
	"testing"
	"time"

	"fedcdp/internal/dataset"
	"fedcdp/internal/nn"
	"fedcdp/internal/simnet"
	"fedcdp/internal/tensor"
)

// Tests for the RPC path over the simnet fabric: the whole federation —
// server, clients, reconnects, crashes, restarts — runs in-memory with
// zero real sockets and zero real-time sleeps.

// rawSession runs one hand-rolled client session over the fabric: read the
// round announcement, submit the given update for that round, return the
// server's receipt. Hand-rolled (instead of RunRemoteClient) so the test
// controls exactly what goes on the wire.
func rawSession(t *testing.T, n *simnet.Net, host string, clientID int, update []float64) AckMsg {
	t.Helper()
	conn, err := n.Dialer(host)("server")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	var pm ParamMsg
	if err := dec.Decode(&pm); err != nil {
		t.Fatalf("%s: reading params: %v", host, err)
	}
	if pm.Denied {
		t.Fatalf("%s: session denied: %s", host, pm.Reason)
	}
	msg := UpdateMsg{ClientID: clientID, Round: pm.Round, Weight: 1}
	msg.Delta = WireFromTensors([]*tensor.Tensor{tensor.FromSlice(append([]float64(nil), update...), len(update))})
	if err := gob.NewEncoder(conn).Encode(msg); err != nil {
		t.Fatalf("%s: sending update: %v", host, err)
	}
	var ack AckMsg
	if err := dec.Decode(&ack); err != nil {
		t.Fatalf("%s: reading ack: %v", host, err)
	}
	return ack
}

// TestReconnectDoesNotDoubleFold pins the reconnect/ack edge: a client
// whose update was folded but whose connection died before it processed
// the ack re-submits after reconnecting. The server must acknowledge the
// retry (the client's data IS in the round) without folding it a second
// time — before deduplication, the retry double-counted the client and
// consumed the round's quorum with a phantom update.
//
// It also pins the slot accounting around that retry: the duplicate must
// consume NEITHER a completion slot (a round with Clients=2 may only
// commit on two DISTINCT resolutions — a fast client's re-submission once
// closed the round before the slow client's update arrived) NOR an
// admission slot (the second distinct client below can only be admitted
// if the duplicate session returned the quota it briefly occupied;
// without the release this test deadlocks in admit()).
func TestReconnectDoesNotDoubleFold(t *testing.T) {
	n := simnet.New(1, nil)
	ln, err := n.Listen("server")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewRoundServerOn(ln)
	defer srv.Close()

	params := []*tensor.Tensor{tensor.FromSlice([]float64{0, 0, 0, 0}, 4)}
	cfg := RoundConfig{BatchSize: 1, LocalIters: 1, LR: 0.1, TotalRounds: 1}
	agg := NewFedSGD()
	type outcome struct {
		res RoundResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := srv.StreamRound(0, params, cfg, agg, RoundOptions{Clients: 2, MinQuorum: 2})
		done <- outcome{res, err}
	}()

	// Client 0 submits and is folded — but "never sees" the ack and
	// re-submits the same round over a fresh connection.
	if ack := rawSession(t, n, "c0", 0, []float64{1, 2, 3, 4}); !ack.Accepted {
		t.Fatalf("first submission rejected: %s", ack.Reason)
	}
	ack := rawSession(t, n, "c0", 0, []float64{1, 2, 3, 4})
	if !ack.Accepted {
		t.Fatalf("duplicate retry must be acknowledged (the data was folded): %s", ack.Reason)
	}
	if !strings.Contains(ack.Reason, "duplicate") {
		t.Fatalf("duplicate ack should say so, got %q", ack.Reason)
	}
	// The duplicate resolved the round's second SESSION, but not its
	// second CLIENT: the round must still be open, waiting for c1 — and
	// must still have an admission slot to give it.
	select {
	case o := <-done:
		t.Fatalf("round closed on a duplicate session: %+v (err %v)", o.res, o.err)
	default:
	}
	if ack := rawSession(t, n, "c1", 1, []float64{3, 4, 5, 6}); !ack.Accepted {
		t.Fatalf("second client rejected: %s", ack.Reason)
	}

	o := <-done
	if o.err != nil {
		t.Fatal(o.err)
	}
	if o.res.Folded != 2 || o.res.Duplicates != 1 || o.res.Failed != 0 {
		t.Fatalf("round result %+v, want 2 folded / 1 duplicate / 0 failed", o.res)
	}
	if !o.res.Committed {
		t.Fatal("round with 2 distinct folds must meet quorum 2")
	}
	// The aggregate is the mean of the two DISTINCT updates — the
	// double-submission must not have shifted it.
	want := []float64{2, 3, 4, 5}
	for i, v := range params[0].Data() {
		if v != want[i] {
			t.Fatalf("params %v, want %v (duplicate folded?)", params[0].Data(), want)
		}
	}
}

// TestHostileUpdateRejected sends structurally hostile updates through the
// fabric: the server must answer with a reasoned receipt and survive —
// never panic, never fold the poison.
func TestHostileUpdateRejected(t *testing.T) {
	n := simnet.New(1, nil)
	ln, _ := n.Listen("server")
	srv := NewRoundServerOn(ln)
	srv.Clock = n.Clock()
	defer srv.Close()

	params := []*tensor.Tensor{tensor.FromSlice([]float64{0, 0}, 2)}
	cfg := RoundConfig{BatchSize: 1, LocalIters: 1, LR: 0.1, TotalRounds: 1}
	type outcome struct {
		res RoundResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		// A virtual deadline (that never fires — every session resolves)
		// makes session errors non-fatal, the deployment contract.
		res, err := srv.StreamRound(0, params, cfg, NewFedSGD(), RoundOptions{Clients: 3, Deadline: time.Hour, MinQuorum: 1})
		done <- outcome{res, err}
	}()

	if ack := rawSession(t, n, "evil0", 7, []float64{math.NaN(), 1}); ack.Accepted || ack.Reason == "" {
		t.Fatalf("NaN update must be refused with a reason, got %+v", ack)
	}
	if ack := rawSession(t, n, "evil1", 8, []float64{1, 2, 3, 4, 5}); ack.Accepted || ack.Reason == "" {
		t.Fatalf("mis-shaped update must be refused with a reason, got %+v", ack)
	}
	if ack := rawSession(t, n, "c0", 0, []float64{2, 4}); !ack.Accepted {
		t.Fatalf("honest update rejected: %s", ack.Reason)
	}

	o := <-done
	if o.err != nil {
		t.Fatal(o.err)
	}
	if o.res.Folded != 1 || o.res.Failed != 2 {
		t.Fatalf("round result %+v, want 1 folded / 2 failed", o.res)
	}
	if got := params[0].Data(); got[0] != 2 || got[1] != 4 {
		t.Fatalf("params %v, want the honest update applied", got)
	}
}

// TestRemoteClientOverSimnetFabric runs the real client logic (training
// included) against a server across the fabric, with a crashed cohort
// member injected via AbandonSession — the full deployment loop with no
// real network.
func TestRemoteClientOverSimnetFabric(t *testing.T) {
	spec, err := dataset.Get("cancer")
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.New(spec, 42)
	n := simnet.New(42, simnet.MustParsePlan("latency=10ms,jitter=5ms"))
	ln, _ := n.Listen("server")
	srv := NewRoundServerOn(ln)
	srv.Clock = n.Clock()
	defer srv.Close()

	model := tensorsForSpec(t, spec)
	cfg := RoundConfig{BatchSize: 4, LocalIters: 2, LR: 0.1, TotalRounds: 1}
	agg := NewFedSGD()
	type outcome struct {
		res RoundResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := srv.StreamRound(0, model, cfg, agg, RoundOptions{Clients: 3, Deadline: time.Hour, MinQuorum: 1})
		done <- outcome{res, err}
	}()

	clientErr := make(chan error, 2)
	for id := 0; id < 2; id++ {
		go func(id int) {
			clientErr <- RunRemoteClientOpts("server", id, sgdStrategy{}, ds.Client(id), spec.ModelSpec(), 42,
				ClientOptions{Dial: n.Dialer("c" + string(rune('0'+id)))})
		}(id)
	}
	// The third cohort member crashes mid-round.
	if _, err := AbandonSession("server", ClientOptions{Dial: n.Dialer("c2")}); err != nil {
		t.Fatalf("crash client could not even read the announcement: %v", err)
	}

	for i := 0; i < 2; i++ {
		if err := <-clientErr; err != nil {
			t.Fatalf("live client: %v", err)
		}
	}
	o := <-done
	if o.err != nil {
		t.Fatal(o.err)
	}
	if o.res.Folded != 2 || o.res.Failed != 1 || !o.res.Committed {
		t.Fatalf("round result %+v, want 2 folded / 1 failed / committed", o.res)
	}
	if n.Clock().Now().Sub(time.Unix(0, 0).UTC()) <= 0 {
		t.Fatal("virtual link latency never advanced the virtual clock")
	}
}

// TestServerRestartOverFabric restarts the server between rounds: the old
// listener closes, a new server rebinds the same fabric address, and the
// next round proceeds — the reconnect surface cmd/fedclient retries
// against, exercised with zero real sockets.
func TestServerRestartOverFabric(t *testing.T) {
	n := simnet.New(7, nil)
	params := []*tensor.Tensor{tensor.FromSlice([]float64{0, 0}, 2)}
	cfg := RoundConfig{BatchSize: 1, LocalIters: 1, LR: 0.1, TotalRounds: 2}

	runRound := func(round int, update []float64) RoundResult {
		t.Helper()
		ln, err := n.Listen("server")
		if err != nil {
			t.Fatal(err)
		}
		srv := NewRoundServerOn(ln)
		type outcome struct {
			res RoundResult
			err error
		}
		done := make(chan outcome, 1)
		go func() {
			res, err := srv.StreamRound(round, params, cfg, NewFedSGD(), RoundOptions{Clients: 1})
			done <- outcome{res, err}
		}()
		if ack := rawSessionRound(t, n, "c0", 0, round, update); !ack.Accepted {
			t.Fatalf("round %d update rejected: %s", round, ack.Reason)
		}
		o := <-done
		if o.err != nil {
			t.Fatal(o.err)
		}
		// Restart: everything about the server dies except the model.
		srv.Close()
		return o.res
	}

	if res := runRound(0, []float64{1, 1}); res.Folded != 1 {
		t.Fatalf("round 0: %+v", res)
	}
	if res := runRound(1, []float64{2, 2}); res.Folded != 1 {
		t.Fatalf("round 1 after restart: %+v", res)
	}
	if got := params[0].Data(); got[0] != 3 || got[1] != 3 {
		t.Fatalf("params %v after two rounds across a restart, want [3 3]", got)
	}
}

// rawSessionRound is rawSession asserting the announced round.
func rawSessionRound(t *testing.T, n *simnet.Net, host string, clientID, wantRound int, update []float64) AckMsg {
	t.Helper()
	conn, err := n.Dialer(host)("server")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	var pm ParamMsg
	if err := dec.Decode(&pm); err != nil {
		t.Fatal(err)
	}
	if pm.Denied || pm.Round != wantRound {
		t.Fatalf("announcement %+v, want round %d", pm, wantRound)
	}
	msg := UpdateMsg{ClientID: clientID, Round: pm.Round, Weight: 1}
	msg.Delta = WireFromTensors([]*tensor.Tensor{tensor.FromSlice(append([]float64(nil), update...), len(update))})
	if err := gob.NewEncoder(conn).Encode(msg); err != nil {
		t.Fatal(err)
	}
	var ack AckMsg
	if err := dec.Decode(&ack); err != nil {
		t.Fatal(err)
	}
	return ack
}

// tensorsForSpec builds a fresh parameter set for a benchmark's model.
func tensorsForSpec(t *testing.T, spec dataset.Spec) []*tensor.Tensor {
	t.Helper()
	return nn.Build(spec.ModelSpec(), tensor.NewRNG(7)).Params()
}
