package fl

// Open-world client population. Production federations never see a fixed K
// clients: devices arrive mid-horizon, depart, and return. The Population
// type is the round-indexed registry every runtime consults — cohort
// sampling draws only from the round's active set, so the barrier,
// streaming, RPC-deployment and mux runtimes all agree on who exists in a
// round without sharing any state beyond the seed. Activity is a pure
// function of (seed, clientID, round), provided by the fault plan's
// join/leave/churn clauses (see simnet.ParsePlan), so open-world runs
// replay bit-identically at any GOMAXPROCS.

// PopulationPlan describes an open-world client population: which clients
// are active in which rounds. Every method must be a pure function of its
// arguments plus the plan's seed. simnet.Plan implements it (join=n@r,
// leave=n@r and churn=rate clauses); the runtimes probe Config.Faults for
// it exactly as they probe for AdversaryPlan.
type PopulationPlan interface {
	// PopulationDynamic reports whether the active set can ever differ from
	// the full registry; false means every client is active every round and
	// the runtimes keep their static fast paths.
	PopulationDynamic() bool
	// ClientActive reports whether the client is part of the active
	// population in the round: arrived, not departed, and not churned away.
	ClientActive(round, client int) bool
}

// Population is the round-indexed client registry: K registered client ids
// and, when the plan is dynamic, the per-round active subset. The zero
// Population (and any with a nil/static plan) is the closed world every
// pre-existing run assumed — all K clients active in every round.
type Population struct {
	K    int
	plan PopulationPlan
}

// PopulationOf builds the registry for a K-client run governed by plan
// (typically Config.Faults), probing it structurally for PopulationPlan;
// plans without population clauses — and nil — yield the static registry.
func PopulationOf(k int, plan any) Population {
	p, _ := plan.(PopulationPlan)
	return Population{K: k, plan: p}
}

// population returns the run's registry — the single probe shared by the
// in-process runtimes.
func population(cfg Config) Population {
	return PopulationOf(cfg.K, cfg.Faults)
}

// Dynamic reports whether the active set can differ from the registry.
func (p Population) Dynamic() bool {
	return p.plan != nil && p.plan.PopulationDynamic()
}

// Active reports whether client id participates in the population at round.
func (p Population) Active(round, id int) bool {
	return !p.Dynamic() || p.plan.ClientActive(round, id)
}

// ActiveSet returns the round's active client ids in ascending order; the
// static registry returns [0, K).
func (p Population) ActiveSet(round int) []int {
	ids := make([]int, 0, p.K)
	for id := 0; id < p.K; id++ {
		if p.Active(round, id) {
			ids = append(ids, id)
		}
	}
	return ids
}

// ActiveCount returns the size of the round's active set.
func (p Population) ActiveCount(round int) int {
	if !p.Dynamic() {
		return p.K
	}
	n := 0
	for id := 0; id < p.K; id++ {
		if p.plan.ClientActive(round, id) {
			n++
		}
	}
	return n
}

// AwayBetween reports whether the client was inactive in any round of
// [from, to) — the rejoin-detection rule: a client whose last participation
// was at from-1 and who trains again at to has, if AwayBetween(from, to,
// id), departed and returned in between, so any client-side state banked
// against the old global model (quantization error-feedback residuals) must
// be reset rather than folded into the new one.
func (p Population) AwayBetween(from, to, id int) bool {
	if !p.Dynamic() {
		return false
	}
	if from < 0 {
		from = 0
	}
	for r := from; r < to; r++ {
		if !p.plan.ClientActive(r, id) {
			return true
		}
	}
	return false
}

// ActiveCohort returns the participating client ids fl.Run draws for a
// round under an open-world population — exposed so out-of-process drivers
// (the simnet deployment harness, the mux scheduler, ops tooling) agree
// with the in-process simulator on round membership.
//
// Static populations take the pre-existing draws verbatim (SampleCohort /
// SampleCohortFloyd over [0, K)), so every seeded closed-world run stays
// byte-identical. Dynamic populations materialize the round's active set
// and draw positions into it with the same seeded streams; kt caps at the
// active count, and an empty active set yields an empty cohort (the round
// trains nobody and cannot meet a positive quorum).
func ActiveCohort(seed int64, round int, pop Population, kt int, sampler string, withReplacement bool) []int {
	if !pop.Dynamic() {
		if sampler == SamplerFloyd && !withReplacement {
			return SampleCohortFloyd(seed, round, pop.K, kt)
		}
		return SampleCohort(seed, round, pop.K, kt, withReplacement)
	}
	active := pop.ActiveSet(round)
	n := len(active)
	if kt > n {
		kt = n
	}
	if kt == 0 {
		return nil
	}
	var pos []int
	if sampler == SamplerFloyd && !withReplacement {
		pos = SampleCohortFloyd(seed, round, n, kt)
	} else {
		pos = SampleCohort(seed, round, n, kt, withReplacement)
	}
	ids := make([]int, len(pos))
	for i, at := range pos {
		ids[i] = active[at]
	}
	return ids
}
