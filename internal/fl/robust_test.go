package fl

import (
	"math"
	"testing"

	"fedcdp/internal/tensor"
)

// Tests for the robust aggregation folds (robust.go): rule parsing, the
// multiset-purity (arrival-order invariance) contract, the β=0 ≡ exact-mean
// parity anchor, statistical correctness on known inputs, and the
// topology guard that keeps order statistics off the sharded tree.

func robustParams(vals ...float64) []*tensor.Tensor {
	data := make([]float64, len(vals))
	copy(data, vals)
	return []*tensor.Tensor{tensor.FromSlice(data, len(data))}
}

func TestRobustAggRuleParsing(t *testing.T) {
	if _, ok := mustAgg(t, "median").(*CoordMedianAggregator); !ok {
		t.Fatal("median did not build a CoordMedianAggregator")
	}
	if a := mustAgg(t, "trimmed").(*TrimmedMeanAggregator); a.Beta != 0.25 {
		t.Fatalf("trimmed default β = %v, want 0.25", a.Beta)
	}
	if a := mustAgg(t, "trimmed:0.34").(*TrimmedMeanAggregator); a.Beta != 0.34 {
		t.Fatalf("trimmed:0.34 β = %v", a.Beta)
	}
	if a := mustAgg(t, "krum").(*KrumAggregator); a.F != 1 {
		t.Fatalf("krum default f = %d, want 1", a.F)
	}
	if a := mustAgg(t, "krum:2").(*KrumAggregator); a.F != 2 {
		t.Fatalf("krum:2 f = %d", a.F)
	}
	for _, bad := range []string{
		"median:1", "fedsgd:1", "weighted:x", // parameter on parameterless rules
		"trimmed:x", "trimmed:0.5", "trimmed:-0.1", // β outside [0, 0.5) or unparsable
		"krum:x", "krum:-1", "krum:1.5",
	} {
		if ValidAggregation(bad) {
			t.Errorf("rule %q must be rejected", bad)
		}
	}
	for _, rule := range []string{"median", "trimmed", "trimmed:0.1", "krum", "krum:0"} {
		if !ValidAggregation(rule) || !RobustAggregation(rule) {
			t.Errorf("rule %q must be valid and robust", rule)
		}
	}
	if RobustAggregation("fedsgd") || RobustAggregation("weighted") {
		t.Fatal("streaming rules misclassified as robust")
	}
}

func mustAgg(t *testing.T, rule string) Aggregator {
	t.Helper()
	a, err := NewAggregator(rule)
	if err != nil {
		t.Fatalf("NewAggregator(%q): %v", rule, err)
	}
	return a
}

// TestTrimmedMeanZeroBetaMatchesExactMean pins the parity anchor the docs
// promise: TrimmedMean(β=0) commits bit-for-bit what the flat exact mean
// fold (NewExact, the tree parity oracle) commits, because both sum every
// survivor exactly and round once through the identical expression.
func TestTrimmedMeanZeroBetaMatchesExactMean(t *testing.T) {
	const dim, n = 32, 7
	rng := tensor.Split(11, 1)
	updates := make([][]*tensor.Tensor, n)
	for i := range updates {
		u := tensor.FromSlice(make([]float64, dim), dim)
		rng.FillNormal(u, 0, 1)
		updates[i] = []*tensor.Tensor{u}
	}
	base := tensor.FromSlice(make([]float64, dim), dim)
	rng.FillNormal(base, 0, 1)

	commit := func(agg Aggregator) []float64 {
		params := []*tensor.Tensor{base.Clone()}
		agg.Begin(params)
		for _, u := range updates {
			agg.Fold(u)
		}
		agg.Commit(params)
		return params[0].Data()
	}

	tm, err := NewTrimmedMean(0)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewExact(AggFedSGD)
	if err != nil {
		t.Fatal(err)
	}
	got, want := commit(tm), commit(exact)
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("element %d: trimmed(0) %v ≠ exact mean %v (bit mismatch)", i, got[i], want[i])
		}
	}
}

// TestRobustFoldArrivalOrderInvariance is the multiset-purity contract: for
// every robust rule, folding the same updates in any order commits
// bit-identical parameters — the property that makes even the simnet
// fabric's arrival-order folds reproducible under a robust rule.
func TestRobustFoldArrivalOrderInvariance(t *testing.T) {
	const dim, n = 16, 6
	rng := tensor.Split(23, 2)
	updates := make([][]*tensor.Tensor, n)
	for i := range updates {
		u := tensor.FromSlice(make([]float64, dim), dim)
		rng.FillNormal(u, 0, 3)
		updates[i] = []*tensor.Tensor{u}
	}
	for _, rule := range []string{AggMedian, "trimmed:0.2", "krum:1"} {
		var ref []float64
		for perm := 0; perm < 8; perm++ {
			order := tensor.Split(51, int64(perm)).Perm(n)
			params := robustParams(make([]float64, dim)...)
			agg := mustAgg(t, rule)
			agg.Begin(params)
			for _, i := range order {
				agg.Fold(updates[i])
			}
			if agg.Count() != n {
				t.Fatalf("%s folded %d of %d", rule, agg.Count(), n)
			}
			agg.Commit(params)
			got := params[0].Data()
			if ref == nil {
				ref = append([]float64(nil), got...)
				continue
			}
			for j := range got {
				if math.Float64bits(got[j]) != math.Float64bits(ref[j]) {
					t.Fatalf("%s: element %d differs under fold order %v", rule, j, order)
				}
			}
		}
	}
}

func TestCoordMedianCorrectness(t *testing.T) {
	fold := func(cols ...[]float64) []float64 {
		params := robustParams(make([]float64, len(cols[0]))...)
		agg := NewCoordMedian()
		agg.Begin(params)
		for _, c := range cols {
			agg.Fold(robustParams(c...))
		}
		agg.Commit(params)
		return params[0].Data()
	}
	// Odd n: the middle sorted value, per coordinate.
	got := fold([]float64{1, 100}, []float64{5, -7}, []float64{3, 2})
	if got[0] != 3 || got[1] != 2 {
		t.Fatalf("odd-n median = %v, want [3 2]", got)
	}
	// Even n: the midpoint of the two central values.
	got = fold([]float64{1}, []float64{3}, []float64{100}, []float64{2})
	if got[0] != 2.5 {
		t.Fatalf("even-n median = %v, want 2.5", got[0])
	}
}

func TestTrimmedMeanTrimsOutliers(t *testing.T) {
	// n=5, β=0.25 → t=1: the hostile ±1e9 values are exactly the trimmed
	// tails, so the commit is the honest mean.
	params := robustParams(0)
	agg, err := NewTrimmedMean(0.25)
	if err != nil {
		t.Fatal(err)
	}
	agg.Begin(params)
	for _, v := range []float64{2, 1e9, 4, -1e9, 6} {
		agg.Fold(robustParams(v))
	}
	agg.Commit(params)
	if got := params[0].Data()[0]; got != 4 {
		t.Fatalf("trimmed mean = %v, want 4 (outliers must be cut)", got)
	}
}

func TestKrumSelectsHonestUpdate(t *testing.T) {
	// Five honest updates clustered near (1,1,1,1) and two attackers far
	// away: Krum(f=2) must commit EXACTLY one of the honest vectors.
	const dim = 4
	rng := tensor.Split(31, 3)
	var honest [][]*tensor.Tensor
	agg, err := NewKrum(2)
	if err != nil {
		t.Fatal(err)
	}
	params := robustParams(make([]float64, dim)...)
	agg.Begin(params)
	for i := 0; i < 5; i++ {
		u := tensor.FromSlice(make([]float64, dim), dim)
		rng.FillNormal(u, 0, 0.01)
		for j, v := range u.Data() {
			u.Data()[j] = 1 + v
		}
		hu := []*tensor.Tensor{u}
		honest = append(honest, hu)
		agg.Fold(hu)
	}
	agg.Fold(robustParams(1e6, -1e6, 1e6, -1e6))
	agg.Fold(robustParams(-1e6, 1e6, -1e6, 1e6))
	agg.Commit(params)

	got := params[0].Data()
	matched := false
	for _, hu := range honest {
		same := true
		for j, v := range hu[0].Data() {
			if math.Float64bits(got[j]) != math.Float64bits(v) {
				same = false
				break
			}
		}
		matched = matched || same
	}
	if !matched {
		t.Fatalf("Krum committed %v — not any honest update", got)
	}
}

func TestRobustFoldDropsMismatchedGeometry(t *testing.T) {
	params := robustParams(0, 0)
	agg := NewCoordMedian()
	agg.Begin(params)
	agg.Fold(robustParams(1, 2))
	agg.Fold(robustParams(1))       // wrong length
	agg.Fold([]*tensor.Tensor(nil)) // wrong arity
	if agg.Count() != 1 {
		t.Fatalf("mismatched updates folded: count %d", agg.Count())
	}
}

// TestRobustTopologyGuard pins the configuration error every surface must
// raise: robust rules are not grouping-invariant, so the exact/tree
// topologies (shards ≥ 1) refuse them up front.
func TestRobustTopologyGuard(t *testing.T) {
	for _, rule := range []string{"median", "trimmed:0.25", "krum:2"} {
		for _, shards := range []int{1, 2, 8} {
			if _, err := NewAggregatorFor(rule, shards, 0, 16); err == nil {
				t.Errorf("NewAggregatorFor(%q, shards=%d) must refuse", rule, shards)
			}
		}
		if _, err := NewAggregatorFor(rule, 0, 0, 16); err != nil {
			t.Errorf("NewAggregatorFor(%q, shards=0): %v", rule, err)
		}
	}
	cfg := smallConfig(t, sgdStrategy{})
	cfg.Aggregation = AggMedian
	cfg.Shards = 2
	if _, err := Run(cfg); err == nil {
		t.Fatal("fl.Run must refuse robust rule + sharded topology")
	}
}
