package fl

import (
	"errors"
	"sync"
	"testing"
	"time"

	"fedcdp/internal/dataset"
	"fedcdp/internal/nn"
	"fedcdp/internal/tensor"
)

// fakeClock is an injectable Clock whose deadline channel fires only when
// the test says so, making straggler-cutoff paths deterministic.
type fakeClock struct{ ch chan time.Time }

func newFakeClock() *fakeClock { return &fakeClock{ch: make(chan time.Time, 1)} }

func (c *fakeClock) Now() time.Time                         { return time.Time{} }
func (c *fakeClock) After(d time.Duration) <-chan time.Time { return c.ch }
func (c *fakeClock) fire()                                  { c.ch <- time.Time{} }

// stallStrategy returns a constant update but blocks the designated
// client until released — a controllable straggler.
type stallStrategy struct {
	stallID int
	release chan struct{}
	value   float64
}

func (stallStrategy) Name() string { return "stall" }

func (s stallStrategy) ClientUpdate(env *ClientEnv) ([]*tensor.Tensor, ClientStats) {
	if env.ClientID == s.stallID {
		<-s.release
	}
	delta := tensor.ZerosLike(env.Model.Params())
	for _, d := range delta {
		d.Fill(s.value)
	}
	return delta, ClientStats{Iters: 1, Duration: time.Millisecond}
}

func (stallStrategy) ServerSanitize(round int, updates [][]*tensor.Tensor, rng *tensor.RNG) {}

// TestStreamingMatchesBarrierExactly is the parity anchor of the
// streaming refactor: because client RNG derives from (seed, round,
// client) and deterministic folding commits in cohort order, the
// streaming runtime must reproduce the barrier runtime's history
// bit-for-bit on seeded runs — under parallelism and dropout.
func TestStreamingMatchesBarrierExactly(t *testing.T) {
	run := func(runtime string) *History {
		cfg := smallConfig(t, sgdStrategy{})
		cfg.Runtime = runtime
		cfg.Parallelism = 8
		cfg.DropoutRate = 0.25
		h, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	hs, hb := run(RuntimeStreaming), run(RuntimeBarrier)
	if len(hs.Rounds) != len(hb.Rounds) {
		t.Fatalf("round counts differ: %d vs %d", len(hs.Rounds), len(hb.Rounds))
	}
	for i := range hs.Rounds {
		s, b := hs.Rounds[i], hb.Rounds[i]
		if s.Clients != b.Clients {
			t.Fatalf("round %d clients %d vs %d", i, s.Clients, b.Clients)
		}
		if s.Accuracy != b.Accuracy {
			t.Fatalf("round %d accuracy %v vs %v", i, s.Accuracy, b.Accuracy)
		}
		if s.MeanGradNorm != b.MeanGradNorm {
			t.Fatalf("round %d grad norm %v vs %v", i, s.MeanGradNorm, b.MeanGradNorm)
		}
		if !s.Committed || !b.Committed {
			t.Fatalf("round %d not committed without quorum", i)
		}
	}
	ps, pb := hs.Final.Params(), hb.Final.Params()
	for i := range ps {
		if !ps[i].Equal(pb[i], 0) {
			t.Fatalf("streaming and barrier params diverge at tensor %d", i)
		}
	}
}

// TestStreamingArrivalOrderRuns exercises the strictly-O(model) arrival
// fold: no reorder buffer, so results are not bit-reproducible, but every
// cohort member must still fold.
func TestStreamingArrivalOrderRuns(t *testing.T) {
	cfg := smallConfig(t, sgdStrategy{})
	cfg.FoldOrder = FoldArrival
	cfg.Parallelism = 8
	hist, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range hist.Rounds {
		if r.Clients != cfg.Kt || r.Dropped != 0 || !r.Committed {
			t.Fatalf("round %+v: want %d folds, 0 dropped, committed", r, cfg.Kt)
		}
	}
}

// deadlineConfig builds a 4-client single-round run whose last cohort
// member stalls until released; the fake clock controls the cutoff.
func deadlineConfig(t *testing.T, value float64) (Config, *fakeClock, chan struct{}, chan int) {
	t.Helper()
	cfg := smallConfig(t, nil)
	cfg.K, cfg.Kt, cfg.Rounds = 4, 4, 1
	// Stall the LAST client in cohort order so the three fast folds
	// commit deterministically before the test fires the deadline.
	cohort := sampleCohort(cfg, 0)
	release := make(chan struct{})
	cfg.Strategy = stallStrategy{stallID: cohort[len(cohort)-1], release: release, value: value}
	cfg.RoundDeadline = time.Second // nominal; the fake clock decides
	clk := newFakeClock()
	cfg.Clock = clk
	folds := make(chan int, 4)
	cfg.foldHook = func(round, n int) { folds <- n }
	return cfg, clk, release, folds
}

func TestDeadlineDropsStraggler(t *testing.T) {
	cfg, clk, release, folds := deadlineConfig(t, 2)
	initial := nn.Build(cfg.Model, tensor.Split(cfg.Seed, 1)).Params()

	histCh := make(chan *History, 1)
	go func() {
		h, err := Run(cfg)
		if err != nil {
			t.Error(err)
		}
		histCh <- h
	}()
	for n := 1; n <= 3; n++ {
		if got := <-folds; got != n {
			t.Errorf("fold %d reported as %d", n, got)
		}
	}
	clk.fire()
	hist := <-histCh
	close(release) // free the straggler's worker
	if hist == nil {
		t.Fatal("run failed")
	}
	rs := hist.Rounds[0]
	if rs.Clients != 3 || rs.Dropped != 1 || !rs.Committed {
		t.Fatalf("round stats %+v: want 3 folded, 1 dropped, committed", rs)
	}
	// Exactly the three survivors' mean was applied: params moved by
	// (2+2+2)·(1/3) = 2 up to the rounding of (w + δ) − w.
	for i, p := range hist.Final.Params() {
		diff := p.Clone()
		diff.Sub(initial[i])
		for _, v := range diff.Data() {
			if v < 2-1e-9 || v > 2+1e-9 {
				t.Fatalf("param delta %v, want 2", v)
			}
		}
	}
}

func TestQuorumMissLeavesModelUnchanged(t *testing.T) {
	cfg, clk, release, folds := deadlineConfig(t, 5)
	cfg.MinQuorum = 4 // the straggler's miss must sink the whole round
	initial := nn.Build(cfg.Model, tensor.Split(cfg.Seed, 1)).Params()

	histCh := make(chan *History, 1)
	go func() {
		h, err := Run(cfg)
		if err != nil {
			t.Error(err)
		}
		histCh <- h
	}()
	for n := 1; n <= 3; n++ {
		<-folds
	}
	clk.fire()
	hist := <-histCh
	close(release)
	if hist == nil {
		t.Fatal("run failed")
	}
	rs := hist.Rounds[0]
	if rs.Clients != 3 || rs.Committed {
		t.Fatalf("round stats %+v: want 3 folded, uncommitted", rs)
	}
	for i, p := range hist.Final.Params() {
		if !p.Equal(initial[i], 0) {
			t.Fatal("below-quorum round must leave the model unchanged")
		}
	}
}

// TestQuorumAppliesToBarrierRuntime pins the shared quorum semantics on
// the legacy path: with every client dropping, a positive quorum keeps
// the model frozen in both runtimes, no clock needed.
func TestQuorumAppliesToBarrierRuntime(t *testing.T) {
	for _, runtime := range []string{RuntimeStreaming, RuntimeBarrier} {
		cfg := smallConfig(t, echoStrategy{value: 9})
		cfg.Runtime = runtime
		cfg.DropoutRate = 1
		cfg.MinQuorum = 2
		initial := nn.Build(cfg.Model, tensor.Split(cfg.Seed, 1)).Params()
		hist, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range hist.Rounds {
			if r.Committed {
				t.Fatalf("%s: empty round reported committed", runtime)
			}
		}
		for i, p := range hist.Final.Params() {
			if !p.Equal(initial[i], 0) {
				t.Fatalf("%s: uncommitted rounds moved the model", runtime)
			}
		}
	}
}

func TestStreamingConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"bad runtime", func(c *Config) { c.Runtime = "bulk-synchronous" }},
		{"bad fold order", func(c *Config) { c.FoldOrder = "random" }},
		{"negative quorum", func(c *Config) { c.MinQuorum = -1 }},
		{"quorum above Kt", func(c *Config) { c.MinQuorum = c.Kt + 1 }},
		{"negative deadline", func(c *Config) { c.RoundDeadline = -time.Second }},
	}
	for _, tc := range cases {
		cfg := smallConfig(t, echoStrategy{})
		tc.mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

// --- TCP streaming rounds ---

// signalAgg wraps an Aggregator to announce every fold, letting tests
// sequence deadline firing deterministically against remote deliveries.
type signalAgg struct {
	Aggregator
	ch chan struct{}
}

func (a signalAgg) Fold(u []*tensor.Tensor) {
	a.Aggregator.Fold(u)
	a.ch <- struct{}{}
}

func TestStreamRoundFoldsOverTCP(t *testing.T) {
	spec, err := dataset.Get("cancer")
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.New(spec, 42)
	model := nn.Build(spec.ModelSpec(), tensor.NewRNG(7))
	before := tensor.CloneAll(model.Params())
	cfg := RoundConfig{BatchSize: 4, LocalIters: 2, LR: 0.1, TotalRounds: 1}

	srv, err := NewRoundServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const kt = 3
	var wg sync.WaitGroup
	for i := 0; i < kt; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := RunRemoteClient(srv.Addr(), id, sgdStrategy{}, ds.Client(id), spec.ModelSpec(), 42); err != nil {
				t.Error(err)
			}
		}(i)
	}
	res, err := srv.StreamRound(0, model.Params(), cfg, NewFedSGD(), RoundOptions{Clients: kt})
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Folded != kt || res.Failed != 0 || !res.Committed {
		t.Fatalf("round result %+v, want %d folded and committed", res, kt)
	}
	moved := false
	for i, p := range model.Params() {
		if !p.Equal(before[i], 0) {
			moved = true
		}
	}
	if !moved {
		t.Fatal("committed streaming round did not move the model")
	}
}

func TestStreamRoundDeadlineOverTCP(t *testing.T) {
	spec, _ := dataset.Get("cancer")
	ds := dataset.New(spec, 42)
	model := nn.Build(spec.ModelSpec(), tensor.NewRNG(7))
	cfg := RoundConfig{BatchSize: 4, LocalIters: 1, LR: 0.1, TotalRounds: 1}

	srv, err := NewRoundServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	clk := newFakeClock()
	srv.Clock = clk

	folded := make(chan struct{}, 2)
	agg := signalAgg{Aggregator: NewFedSGD(), ch: folded}
	type outcome struct {
		res RoundResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		// Expect 2 clients, only 1 shows up; quorum of 1 still commits.
		res, err := srv.StreamRound(0, model.Params(), cfg, agg, RoundOptions{
			Clients: 2, Deadline: time.Second, MinQuorum: 1,
		})
		done <- outcome{res, err}
	}()
	if err := RunRemoteClient(srv.Addr(), 0, sgdStrategy{}, ds.Client(0), spec.ModelSpec(), 42); err != nil {
		t.Fatal(err)
	}
	<-folded // the lone update is in the aggregator
	clk.fire()
	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.res.Folded != 1 || !out.res.Committed {
		t.Fatalf("round result %+v, want 1 folded, committed", out.res)
	}
}

func TestStreamRoundQuorumMissOverTCP(t *testing.T) {
	spec, _ := dataset.Get("cancer")
	ds := dataset.New(spec, 42)
	model := nn.Build(spec.ModelSpec(), tensor.NewRNG(7))
	before := tensor.CloneAll(model.Params())
	cfg := RoundConfig{BatchSize: 4, LocalIters: 1, LR: 0.1, TotalRounds: 1}

	srv, err := NewRoundServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	clk := newFakeClock()
	srv.Clock = clk

	folded := make(chan struct{}, 2)
	type outcome struct {
		res RoundResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := srv.StreamRound(0, model.Params(), cfg, signalAgg{Aggregator: NewFedSGD(), ch: folded}, RoundOptions{
			Clients: 3, Deadline: time.Second, MinQuorum: 2,
		})
		done <- outcome{res, err}
	}()
	if err := RunRemoteClient(srv.Addr(), 0, sgdStrategy{}, ds.Client(0), spec.ModelSpec(), 42); err != nil {
		t.Fatal(err)
	}
	<-folded
	clk.fire()
	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.res.Folded != 1 || out.res.Committed {
		t.Fatalf("round result %+v, want 1 folded, uncommitted", out.res)
	}
	for i, p := range model.Params() {
		if !p.Equal(before[i], 0) {
			t.Fatal("below-quorum round must not touch the global model")
		}
	}
}

// TestWaitingSessionDeniedOnClose pins the protocol-level "round over"
// answer: a session parked between rounds must receive an explicit
// refusal when the server shuts down, not a hang or a bare reset.
func TestWaitingSessionDeniedOnClose(t *testing.T) {
	spec, _ := dataset.Get("cancer")
	ds := dataset.New(spec, 1)
	srv, err := NewRoundServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Run one round so the accept loop is live, with its own client.
	model := nn.Build(spec.ModelSpec(), tensor.NewRNG(3))
	cfg := RoundConfig{BatchSize: 4, LocalIters: 1, LR: 0.1}
	go func() {
		_ = RunRemoteClient(srv.Addr(), 0, sgdStrategy{}, ds.Client(0), spec.ModelSpec(), 1)
	}()
	if _, err := srv.RunRound(0, model.Params(), cfg, 1); err != nil {
		t.Fatal(err)
	}

	// A late client connects after the final round: it parks.
	errCh := make(chan error, 1)
	go func() {
		errCh <- RunRemoteClient(srv.Addr(), 1, sgdStrategy{}, ds.Client(1), spec.ModelSpec(), 1)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.waitingSessions() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("late session never parked")
		}
		time.Sleep(time.Millisecond)
	}
	srv.Close()
	if err := <-errCh; !errors.Is(err, ErrRoundClosed) {
		t.Fatalf("late session got %v, want ErrRoundClosed", err)
	}
}

// TestExtraSessionsWaitForNextRound: connections beyond the round quota
// are not refused — they park and are served by the following round.
func TestExtraSessionsWaitForNextRound(t *testing.T) {
	spec, _ := dataset.Get("cancer")
	ds := dataset.New(spec, 5)
	model := nn.Build(spec.ModelSpec(), tensor.NewRNG(4))
	cfg := RoundConfig{BatchSize: 4, LocalIters: 1, LR: 0.1}
	srv, err := NewRoundServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(id int) {
			errs <- RunRemoteClient(srv.Addr(), id, sgdStrategy{}, ds.Client(id), spec.ModelSpec(), 5)
		}(i)
	}
	for round := 0; round < 2; round++ {
		res, err := srv.StreamRound(round, model.Params(), cfg, NewFedSGD(), RoundOptions{Clients: 1})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if res.Folded != 1 {
			t.Fatalf("round %d folded %d, want 1", round, res.Folded)
		}
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("client: %v", err)
		}
	}
}

// sparseEchoStrategy shares exactly one nonzero coordinate per tensor and
// declares itself sparse-capable, exercising the sparse wire path end to
// end.
type sparseEchoStrategy struct{ value float64 }

func (sparseEchoStrategy) Name() string { return "sparse-echo" }

func (s sparseEchoStrategy) ClientUpdate(env *ClientEnv) ([]*tensor.Tensor, ClientStats) {
	delta := tensor.ZerosLike(env.Model.Params())
	for _, d := range delta {
		d.Data()[d.Len()-1] = s.value
	}
	return delta, ClientStats{Iters: 1}
}

func (sparseEchoStrategy) ServerSanitize(round int, updates [][]*tensor.Tensor, rng *tensor.RNG) {}

func (sparseEchoStrategy) SparseUpdates() bool { return true }

func TestSparseUpdateOverTCP(t *testing.T) {
	spec, _ := dataset.Get("cancer")
	ds := dataset.New(spec, 9)
	model := nn.Build(spec.ModelSpec(), tensor.NewRNG(6))
	cfg := RoundConfig{BatchSize: 4, LocalIters: 1, LR: 0.1}
	srv, err := NewRoundServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	done := make(chan error, 1)
	go func() {
		done <- RunRemoteClient(srv.Addr(), 0, sparseEchoStrategy{value: 3}, ds.Client(0), spec.ModelSpec(), 9)
	}()
	deltas, err := srv.RunRound(0, model.Params(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cerr := <-done; cerr != nil {
		t.Fatal(cerr)
	}
	if len(deltas) != 1 {
		t.Fatalf("collected %d updates, want 1", len(deltas))
	}
	for j, d := range deltas[0] {
		for i, v := range d.Data() {
			want := 0.0
			if i == d.Len()-1 {
				want = 3
			}
			if v != want {
				t.Fatalf("tensor %d entry %d = %v, want %v — sparse wire corrupted", j, i, v, want)
			}
		}
	}
}
