package fl

import (
	"testing"

	"fedcdp/internal/simnet"
	"fedcdp/internal/tensor"
)

// Tests for in-process fault injection (Config.Faults): both runtimes must
// lose exactly the planned contributions, stay bit-reproducible, and stay
// in lockstep with each other under any plan.

func faultedConfig(t *testing.T, plan string) Config {
	t.Helper()
	cfg := smallConfig(t, sgdStrategy{})
	p, err := simnet.ParsePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = p.MustBind(cfg.Seed, cfg.Rounds, cfg.K)
	return cfg
}

func TestFaultPlanLosesContributions(t *testing.T) {
	cfg := faultedConfig(t, "drop=0.5")
	hist, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lost := 0
	for _, r := range hist.Rounds {
		lost += r.Dropped
		if r.Clients+r.Dropped != cfg.Kt {
			t.Fatalf("round %d: %d folded + %d dropped ≠ cohort %d", r.Round, r.Clients, r.Dropped, cfg.Kt)
		}
	}
	if lost == 0 {
		t.Fatal("drop=0.5 lost nothing across 3 rounds of 4")
	}
}

func TestFaultPlanStreamingBarrierParity(t *testing.T) {
	// The acceptance anchor for in-process injection: under a plan mixing
	// drops, crashes and a restart, the deterministic-fold streaming
	// runtime and the barrier runtime commit identical rounds and
	// bit-identical final parameters.
	run := func(runtime string) *History {
		cfg := faultedConfig(t, "drop=0.3,crash=2,restart=1")
		cfg.Runtime = runtime
		cfg.MinQuorum = 2
		h, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	hs, hb := run(RuntimeStreaming), run(RuntimeBarrier)
	for i := range hs.Rounds {
		s, b := hs.Rounds[i], hb.Rounds[i]
		if s.Clients != b.Clients || s.Dropped != b.Dropped || s.Committed != b.Committed || s.Accuracy != b.Accuracy {
			t.Fatalf("round %d diverges under faults: streaming %+v vs barrier %+v", i, s, b)
		}
	}
	ps, pb := hs.Final.Params(), hb.Final.Params()
	for i := range ps {
		if !ps[i].Equal(pb[i], 0) {
			t.Fatalf("faulted streaming and barrier params diverge at tensor %d", i)
		}
	}
}

func TestFaultPlanReproducible(t *testing.T) {
	// Same plan, same seed, different parallelism → identical history.
	run := func(par int) *History {
		cfg := faultedConfig(t, "drop=0.3,crash=2,restart=1")
		cfg.Parallelism = par
		h, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	h1, h2 := run(1), run(8)
	for i := range h1.Rounds {
		if h1.Rounds[i].Clients != h2.Rounds[i].Clients || h1.Rounds[i].Accuracy != h2.Rounds[i].Accuracy {
			t.Fatalf("round %d differs across parallelism: %+v vs %+v", i, h1.Rounds[i], h2.Rounds[i])
		}
	}
	p1, p2 := h1.Final.Params(), h2.Final.Params()
	for i := range p1 {
		if !p1[i].Equal(p2[i], 0) {
			t.Fatal("faulted run not reproducible across parallelism")
		}
	}
}

func TestCrashSkipsTrainingButDropDoesNot(t *testing.T) {
	// A crash and a drop are observably identical at the server (the
	// update is lost either way) but differ in what they cost: both remove
	// exactly the planned client from every round's fold.
	cfg := faultedConfig(t, "crash@0:0,crash@0:1,crash@0:2,crash@0:3,crash@0:4,crash@0:5,crash@0:6,crash@0:7,crash@0:8,crash@0:9")
	cfg.MinQuorum = 1
	hist, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r0 := hist.Rounds[0]
	if r0.Clients != 0 || r0.Committed {
		t.Fatalf("round 0 with every client crashed: %+v", r0)
	}
	if hist.Rounds[1].Clients != cfg.Kt {
		t.Fatalf("round 1 must recover the full cohort, got %d", hist.Rounds[1].Clients)
	}
}

func TestServerRestartKeepsTraining(t *testing.T) {
	// A restart loses all in-memory server state but not the model: the
	// run continues and remains deterministic.
	run := func() *History {
		cfg := faultedConfig(t, "restart@1,restart@2")
		h, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	h1, h2 := run(), run()
	a1, ok1 := h1.FinalAccuracy()
	a2, ok2 := h2.FinalAccuracy()
	if a1 != a2 || ok1 != ok2 {
		t.Fatal("restarted runs must be reproducible")
	}
	p1, p2 := h1.Final.Params(), h2.Final.Params()
	for i := range p1 {
		if !p1[i].Equal(p2[i], 0) {
			t.Fatal("restarted runs must be bit-identical")
		}
	}
	for _, r := range h1.Rounds {
		if r.Clients != smallConfig(t, sgdStrategy{}).Kt {
			t.Fatalf("restart must not lose clients: round %+v", r)
		}
	}
}

// TestWeightedFoldArrivalOrderParity pins the weighted-fold invariant the
// fault matrix relies on: the weighted FedAvg fold commits the same
// aggregate as the sequential oracle Σ wₖ(W+ΔWₖ)/Σ wₖ under ANY arrival
// order. With dyadic-rational updates and a power-of-two weight total the
// float arithmetic is exact, so the parity is bit-for-bit; with generic
// floats it holds to summation tolerance.
func TestWeightedFoldArrivalOrderParity(t *testing.T) {
	const dim = 6
	newParams := func(vals ...float64) []*tensor.Tensor {
		data := make([]float64, dim)
		copy(data, vals)
		return []*tensor.Tensor{tensor.FromSlice(data, dim)}
	}
	type contrib struct {
		update []*tensor.Tensor
		weight float64
	}
	// Integer-valued updates; weights sum to 8 (a power of two), so every
	// sum and the final 1/Σw scale are exact in float64.
	contribs := []contrib{
		{newParams(1, 2, 3, 4, 5, 6), 1},
		{newParams(-2, 4, 0, 8, -6, 2), 2},
		{newParams(3, -3, 9, 1, 0, 5), 2},
		{newParams(7, 0, -1, 2, 2, 2), 3},
	}
	oracle := func() []float64 {
		base := []float64{10, 20, 30, 40, 50, 60}
		out := make([]float64, dim)
		var wsum float64
		for _, c := range contribs {
			for i := 0; i < dim; i++ {
				out[i] += c.weight * (base[i] + c.update[0].Data()[i])
			}
			wsum += c.weight
		}
		for i := range out {
			out[i] /= wsum
		}
		return out
	}()

	for perm := 0; perm < 12; perm++ {
		order := tensor.Split(99, int64(perm)).Perm(len(contribs))
		params := newParams(10, 20, 30, 40, 50, 60)
		agg := NewWeightedFedAvg()
		agg.Begin(params)
		for _, i := range order {
			agg.FoldWeighted(contribs[i].update, contribs[i].weight)
		}
		agg.Commit(params)
		for i, v := range params[0].Data() {
			if v != oracle[i] {
				t.Fatalf("perm %v: element %d = %v, oracle %v (order-dependent fold)", order, i, v, oracle[i])
			}
		}
	}
}
