package fl

import (
	"fmt"
	"math"
	"math/big"
	"sync"

	"fedcdp/internal/tensor"
)

// Hierarchical (sharded) aggregation. Edge aggregators each own a shard of
// the client population, fold their shard's updates locally, and forward
// one weight-carrying partial fold upstream; the root composes partials
// exactly as it composes client updates. The correctness obligation is
// strong: a tree fold over ANY shard assignment must reproduce the flat
// fold bit for bit. Floating-point addition is not associative, so a float
// partial sum cannot honor that — instead the sharded fold accumulates in
// an exact wide fixed-point representation (ExactVec below): every float64
// addend is absorbed without rounding, sums over any grouping and in any
// order are the same mathematical value, and a single round-to-nearest
// happens at Commit. Exactness is what makes the tree ≡ flat guarantee a
// theorem instead of a tolerance — and, as a bonus, makes arrival-order
// streaming folds bit-reproducible at any GOMAXPROCS.
//
// The exact fold is opt-in (Config.Shards ≥ 1, core.Config.Shards,
// fedserve -agg-shards): its committed bits differ from the legacy float
// aggregators' order-dependent sums, so the flat parity oracle for a tree
// fold is the single-shard exact fold (Shards=1), and every pre-existing
// seeded golden — which runs with Shards=0 — is untouched.

// exactPrec is the accumulator width in bits. A float64 addend spans at
// most 53 mantissa bits anywhere in [2^-1074, 2^1024); after N ≤ 2^150
// exact additions the sum's magnitude is below 2^(1024+150), so the widest
// window any reachable sum needs is (1024+150) − (−1074) + margin < 2304.
// Within that window big.Float addition at this precision never rounds.
const exactPrec = 2304

// Special-value codes tracked per element beside the exact accumulator
// (big.Float has no NaN, and ±Inf must merge by IEEE rules: opposite
// infinities yield NaN, NaN absorbs everything).
const (
	exactFinite byte = iota
	exactPosInf
	exactNegInf
	exactNaN
)

// mergeSpec combines two special-value codes under IEEE addition rules.
func mergeSpec(a, b byte) byte {
	switch {
	case a == exactFinite:
		return b
	case b == exactFinite:
		return a
	case a == b:
		return a
	default: // mixed infinities, or anything with NaN
		return exactNaN
	}
}

// specFloat materializes a special-value code.
func specFloat(s byte) float64 {
	switch s {
	case exactPosInf:
		return math.Inf(1)
	case exactNegInf:
		return math.Inf(-1)
	default:
		return math.NaN()
	}
}

// ExactVec is a vector of exact fixed-point accumulators for float64
// addends. Addition is exact (see exactPrec), hence commutative and
// associative: sums are invariant to arrival order, grouping, shard
// assignment and tree fanout, which is the arithmetic foundation of the
// hierarchical fold. Round performs the single round-to-nearest-even per
// element. Not safe for concurrent use; the aggregators lock around it.
type ExactVec struct {
	acc     []big.Float
	spec    []byte
	scratch big.Float
}

// NewExactVec returns a zeroed n-element exact accumulator.
func NewExactVec(n int) *ExactVec {
	v := &ExactVec{acc: make([]big.Float, n), spec: make([]byte, n)}
	for i := range v.acc {
		v.acc[i].SetPrec(exactPrec)
	}
	v.scratch.SetPrec(53)
	return v
}

// Len returns the element count.
func (v *ExactVec) Len() int { return len(v.acc) }

// Zero resets every element to an empty sum (for reuse across rounds).
func (v *ExactVec) Zero() {
	for i := range v.acc {
		v.acc[i].SetInt64(0)
		v.spec[i] = exactFinite
	}
}

// Add absorbs one float64 addend into element i, exactly. Zero addends are
// skipped (an exact sum is unchanged; note this canonicalizes a sum of
// negative zeros to +0, one of the documented exact-mode semantics).
// Non-finite addends fold into the element's special-value code.
func (v *ExactVec) Add(i int, x float64) {
	if x == 0 {
		return
	}
	if math.IsNaN(x) {
		v.spec[i] = mergeSpec(v.spec[i], exactNaN)
		return
	}
	if math.IsInf(x, 1) {
		v.spec[i] = mergeSpec(v.spec[i], exactPosInf)
		return
	}
	if math.IsInf(x, -1) {
		v.spec[i] = mergeSpec(v.spec[i], exactNegInf)
		return
	}
	v.scratch.SetFloat64(x)
	v.acc[i].Add(&v.acc[i], &v.scratch)
}

// AddAll absorbs data element-wise: acc[i] += data[i].
func (v *ExactVec) AddAll(data []float64) {
	for i, x := range data {
		v.Add(i, x)
	}
}

// AddAllScaled absorbs the float64-rounded products fl(s·data[i]) —
// exactly the addends the legacy weighted fold produces, so the exact and
// legacy folds agree on what each client contributes and differ only in
// how contributions are summed.
func (v *ExactVec) AddAllScaled(s float64, data []float64) {
	for i, x := range data {
		v.Add(i, s*x)
	}
}

// Merge absorbs another accumulator: the grouping step of a tree fold.
func (v *ExactVec) Merge(o *ExactVec) error {
	if o.Len() != v.Len() {
		return fmt.Errorf("fl: exact merge of %d elements into %d", o.Len(), v.Len())
	}
	for i := range v.acc {
		v.spec[i] = mergeSpec(v.spec[i], o.spec[i])
		v.acc[i].Add(&v.acc[i], &o.acc[i])
	}
	return nil
}

// Round returns element i rounded once to the nearest float64 (ties to
// even); sums beyond the float64 range come back as ±Inf, and elements
// poisoned by non-finite addends as their IEEE-merged special value.
func (v *ExactVec) Round(i int) float64 {
	if v.spec[i] != exactFinite {
		return specFloat(v.spec[i])
	}
	f, _ := v.acc[i].Float64()
	return f
}

// --- Wire form -------------------------------------------------------------

// Caps on hostile wire input: a mantissa cannot be wider than the
// accumulator, and no reachable sum's exponent leaves ±2^20.
const (
	exactMantBytes = exactPrec / 8
	exactExpBound  = 1 << 20
)

// ExactScalarWire is one exact accumulator element in wire form: the value
// is sign·Mant·2^Exp with Mant a big-endian minimal mantissa (empty means
// zero), plus the special-value code. The representation is canonical, so
// encode/decode round-trips preserve the sum bit for bit.
type ExactScalarWire struct {
	Spec byte
	Neg  bool
	Exp  int64
	Mant []byte
}

// ScalarWire returns element i in wire form.
func (v *ExactVec) ScalarWire(i int) ExactScalarWire {
	w := ExactScalarWire{Spec: v.spec[i]}
	a := &v.acc[i]
	if a.Sign() == 0 {
		return w
	}
	w.Neg = a.Signbit()
	var mant big.Float
	exp := a.MantExp(&mant) // |mant| ∈ [0.5, 1), value = mant·2^exp
	mant.Abs(&mant)
	p := int(a.MinPrec())
	mant.SetMantExp(&mant, p) // integer in [2^(p-1), 2^p)
	mi, _ := mant.Int(nil)    // exact: mant is an integer
	w.Mant = mi.Bytes()
	w.Exp = int64(exp - p)
	return w
}

// validateExactScalar rejects wire scalars outside the representable
// envelope before any allocation or arithmetic touches them.
func validateExactScalar(w ExactScalarWire) error {
	switch {
	case w.Spec > exactNaN:
		return fmt.Errorf("fl: unknown exact special code %d", w.Spec)
	case len(w.Mant) > exactMantBytes:
		return fmt.Errorf("fl: exact mantissa of %d bytes exceeds %d", len(w.Mant), exactMantBytes)
	case w.Exp < -exactExpBound || w.Exp > exactExpBound:
		return fmt.Errorf("fl: exact exponent %d outside ±%d", w.Exp, exactExpBound)
	}
	return nil
}

// SetScalarWire installs a wire scalar into element i, validating first.
func (v *ExactVec) SetScalarWire(i int, w ExactScalarWire) error {
	if err := validateExactScalar(w); err != nil {
		return err
	}
	v.spec[i] = w.Spec
	a := &v.acc[i]
	if len(w.Mant) == 0 {
		a.SetInt64(0)
		return nil
	}
	var mi big.Int
	mi.SetBytes(w.Mant)
	a.SetInt(&mi)
	a.SetMantExp(a, int(w.Exp))
	if w.Neg {
		a.Neg(a)
	}
	return nil
}

// ExactTensorWire is one shaped exact-sum tensor in wire form.
type ExactTensorWire struct {
	Shape []int
	Elems []ExactScalarWire
}

// --- Partial folds ---------------------------------------------------------

// Partial is the weight-carrying result of an edge fold: the exact sums
// over some subset of the round's client updates, the count of distinct
// clients folded, and (for the weighted rule) the exact weight total. The
// root composes partials by exact merge, so any partition of the cohort
// into partials — one per shard, one per client, or the whole cohort at
// once — commits identical bits.
type Partial struct {
	Rule    string
	Clients int
	WSum    *ExactVec // single element; nil unless Rule is AggWeighted
	Shapes  [][]int
	Sums    []*ExactVec
}

// Merge absorbs another partial of the same rule and geometry.
func (p *Partial) Merge(o *Partial) error {
	if o.Rule != p.Rule {
		return fmt.Errorf("fl: merging %q partial into %q", o.Rule, p.Rule)
	}
	if len(o.Sums) != len(p.Sums) {
		return fmt.Errorf("fl: merging partial of %d tensors into %d", len(o.Sums), len(p.Sums))
	}
	for i := range p.Sums {
		if err := p.Sums[i].Merge(o.Sums[i]); err != nil {
			return err
		}
	}
	if p.WSum != nil {
		if o.WSum == nil {
			return fmt.Errorf("fl: weighted partial merge without a weight sum")
		}
		if err := p.WSum.Merge(o.WSum); err != nil {
			return err
		}
	}
	p.Clients += o.Clients
	return nil
}

// Wire converts the partial to its wire form.
func (p *Partial) Wire() *PartialWire {
	w := &PartialWire{Rule: p.Rule, Clients: p.Clients, Sums: make([]ExactTensorWire, len(p.Sums))}
	for i, s := range p.Sums {
		tw := ExactTensorWire{
			Shape: append([]int(nil), p.Shapes[i]...),
			Elems: make([]ExactScalarWire, s.Len()),
		}
		for j := range tw.Elems {
			tw.Elems[j] = s.ScalarWire(j)
		}
		w.Sums[i] = tw
	}
	if p.WSum != nil {
		w.HasWSum = true
		w.WSum = p.WSum.ScalarWire(0)
	}
	return w
}

// PartialWire is the wire form of a Partial, carried by UpdateMsg.Partial
// on edge→root sessions over either codec.
type PartialWire struct {
	Rule    string
	Clients int
	HasWSum bool
	WSum    ExactScalarWire
	Sums    []ExactTensorWire
}

// Validate reports whether the wire partial is structurally sound — rule
// known, counts and shapes bounded, every scalar in the representable
// envelope. Hostile input gets an error, never a panic or an allocation
// balloon.
func (w *PartialWire) Validate() error {
	switch w.Rule {
	case AggFedSGD, AggFedAvg, AggWeighted:
	default:
		return fmt.Errorf("fl: partial carries unknown rule %q", w.Rule)
	}
	if w.Clients < 0 || w.Clients > 1<<31 {
		return fmt.Errorf("fl: partial client count %d outside [0, 2^31]", w.Clients)
	}
	if (w.Rule == AggWeighted) != w.HasWSum {
		return fmt.Errorf("fl: partial rule %q with weight-sum presence %v", w.Rule, w.HasWSum)
	}
	if len(w.Sums) == 0 || len(w.Sums) > maxWireTensors {
		return fmt.Errorf("fl: partial carries %d tensors (want 1..%d)", len(w.Sums), maxWireTensors)
	}
	for i, t := range w.Sums {
		n, err := validShapeLen(t.Shape)
		if err != nil {
			return fmt.Errorf("fl: partial tensor %d: %w", i, err)
		}
		if len(t.Elems) != n {
			return fmt.Errorf("fl: partial tensor %d has %d elements for shape %v", i, len(t.Elems), t.Shape)
		}
		for j, e := range t.Elems {
			if err := validateExactScalar(e); err != nil {
				return fmt.Errorf("fl: partial tensor %d element %d: %w", i, j, err)
			}
		}
	}
	if w.HasWSum {
		if err := validateExactScalar(w.WSum); err != nil {
			return fmt.Errorf("fl: partial weight sum: %w", err)
		}
	}
	return nil
}

// PartialFromWire validates and decodes a wire partial.
func PartialFromWire(w *PartialWire) (*Partial, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	p := &Partial{
		Rule:    w.Rule,
		Clients: w.Clients,
		Shapes:  make([][]int, len(w.Sums)),
		Sums:    make([]*ExactVec, len(w.Sums)),
	}
	for i, t := range w.Sums {
		p.Shapes[i] = append([]int(nil), t.Shape...)
		v := NewExactVec(len(t.Elems))
		for j, e := range t.Elems {
			if err := v.SetScalarWire(j, e); err != nil {
				return nil, err
			}
		}
		p.Sums[i] = v
	}
	if w.HasWSum {
		p.WSum = NewExactVec(1)
		if err := p.WSum.SetScalarWire(0, w.WSum); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// --- Topology --------------------------------------------------------------

// Topology assigns the client population to aggregation shards: contiguous
// balanced ranges when the population size K is known (the first K mod
// Shards shards own one extra client), id mod Shards when it is not (a
// standalone fedserve doesn't know K). Pure arithmetic — every participant
// derives the same assignment with no coordination.
type Topology struct {
	K      int // population size; ≤0 = unknown (modulo assignment)
	Shards int // shard count; values ≤1 collapse to one shard
}

// ShardOf returns the owning shard of a client id.
func (t Topology) ShardOf(id int) int {
	s := t.Shards
	if s <= 1 {
		return 0
	}
	if t.K <= 0 {
		if id < 0 {
			id = -id
		}
		return id % s
	}
	if id < 0 {
		return 0
	}
	if id >= t.K {
		return s - 1
	}
	q, r := t.K/s, t.K%s
	if id < r*(q+1) {
		return id / (q + 1)
	}
	return r + (id-r*(q+1))/q
}

// Range returns shard s's contiguous client range [lo, hi); it is only
// meaningful when K is known.
func (t Topology) Range(s int) (lo, hi int) {
	if t.Shards <= 1 {
		return 0, t.K
	}
	q, r := t.K/t.Shards, t.K%t.Shards
	lo = s*q + min(s, r)
	hi = lo + q
	if s < r {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// --- Interfaces ------------------------------------------------------------

// ClientFolder is implemented by aggregators that route folds by client
// identity (the tree fold needs the id to pick a shard; Fold does not
// carry it). The runtimes probe for it exactly as they probe for
// WeightedFolder.
type ClientFolder interface {
	FoldClient(clientID int, update []*tensor.Tensor, weight float64)
}

// PartialFolder is implemented by aggregators that can absorb an edge's
// partial fold — the root of a hierarchical deployment.
type PartialFolder interface {
	FoldPartial(p *Partial) error
}

// foldClientInto routes one update into agg with its client identity when
// the aggregator is identity-aware — the dispatch rule shared by the
// streaming, barrier and RPC runtimes (mirroring foldInto).
func foldClientInto(agg Aggregator, clientID int, update []*tensor.Tensor, weight float64) {
	if cf, ok := agg.(ClientFolder); ok {
		cf.FoldClient(clientID, update, weight)
		return
	}
	foldInto(agg, update, weight)
}

// --- Exact aggregator ------------------------------------------------------

// ExactAggregator is the exact-arithmetic fold behind hierarchical
// aggregation: one instance serves as a flat exact fold (the parity
// oracle), as an edge fold (forwarding TakePartial upstream), or as a tree
// root (absorbing partials via FoldPartial). Addends per client mirror the
// legacy aggregators exactly — fedsgd folds ΔW, fedavg folds W+ΔW,
// weighted folds fl(w·W)+fl(w·ΔW) with the same weight clamping — and the
// commit applies the same expression shape (params += inv·sum, or zero
// then add-scaled), so the only semantic difference from the legacy float
// fold is that the sum itself never rounds.
type ExactAggregator struct {
	mu     sync.Mutex
	rule   string
	base   []*tensor.Tensor
	shapes [][]int
	sums   []*ExactVec
	wsum   *ExactVec
	n      int
}

// NewExact returns an exact fold for an aggregation rule ("" = fedsgd).
func NewExact(rule string) (*ExactAggregator, error) {
	switch rule {
	case "":
		rule = AggFedSGD
	case AggFedSGD, AggFedAvg, AggWeighted:
	default:
		return nil, fmt.Errorf("fl: unknown aggregation %q", rule)
	}
	a := &ExactAggregator{rule: rule}
	if rule == AggWeighted {
		a.wsum = NewExactVec(1)
	}
	return a, nil
}

// Rule returns the aggregation rule this fold implements.
func (a *ExactAggregator) Rule() string { return a.rule }

// Begin implements Aggregator.
func (a *ExactAggregator) Begin(params []*tensor.Tensor) {
	a.mu.Lock()
	defer a.mu.Unlock()
	reuse := len(a.sums) == len(params)
	if reuse {
		for i, p := range params {
			if a.sums[i].Len() != p.Len() {
				reuse = false
				break
			}
		}
	}
	if reuse {
		for _, s := range a.sums {
			s.Zero()
		}
		for i, p := range params {
			a.shapes[i] = append(a.shapes[i][:0], p.Shape()...)
		}
	} else {
		a.sums = make([]*ExactVec, len(params))
		a.shapes = make([][]int, len(params))
		for i, p := range params {
			a.sums[i] = NewExactVec(p.Len())
			a.shapes[i] = append([]int(nil), p.Shape()...)
		}
	}
	if a.rule != AggFedSGD {
		if geometryMatches(a.base, params) {
			for i, p := range params {
				a.base[i].CopyFrom(p)
			}
		} else {
			a.base = tensor.CloneAll(params)
		}
	}
	if a.wsum != nil {
		a.wsum.Zero()
	}
	a.n = 0
}

// Fold implements Aggregator: an unweighted fold counts as weight 1.
func (a *ExactAggregator) Fold(update []*tensor.Tensor) { a.FoldWeighted(update, 1) }

// FoldWeighted implements WeightedFolder. Non-weighted rules ignore the
// weight, exactly as their legacy counterparts (which never see one).
// The weighted rule clamps like WeightedFedAvgAggregator.FoldWeighted.
func (a *ExactAggregator) FoldWeighted(update []*tensor.Tensor, weight float64) {
	if !(weight > 0) || math.IsInf(weight, 1) {
		weight = 1
	} else if weight > maxFoldWeight {
		weight = maxFoldWeight
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	switch a.rule {
	case AggFedSGD:
		for i, u := range update {
			a.sums[i].AddAll(u.Data())
		}
	case AggFedAvg:
		for i, u := range update {
			a.sums[i].AddAll(a.base[i].Data())
			a.sums[i].AddAll(u.Data())
		}
	case AggWeighted:
		for i, u := range update {
			a.sums[i].AddAllScaled(weight, a.base[i].Data())
			a.sums[i].AddAllScaled(weight, u.Data())
		}
		a.wsum.Add(0, weight)
	}
	a.n++
}

// FoldClient implements ClientFolder: a flat exact fold has one shard, so
// identity routing is a plain fold.
func (a *ExactAggregator) FoldClient(clientID int, update []*tensor.Tensor, weight float64) {
	a.FoldWeighted(update, weight)
}

// FoldPartial implements PartialFolder: the root absorbs one edge's
// partial by exact merge. Geometry or rule mismatches are errors — the
// runtime counts the session as failed instead of poisoning the round.
func (a *ExactAggregator) FoldPartial(p *Partial) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if p.Rule != a.rule {
		return fmt.Errorf("fl: folding %q partial into %q aggregator", p.Rule, a.rule)
	}
	if len(p.Sums) != len(a.sums) {
		return fmt.Errorf("fl: partial has %d tensors, round has %d", len(p.Sums), len(a.sums))
	}
	for i := range p.Sums {
		if p.Sums[i].Len() != a.sums[i].Len() {
			return fmt.Errorf("fl: partial tensor %d has %d elements, round has %d", i, p.Sums[i].Len(), a.sums[i].Len())
		}
	}
	for i := range p.Sums {
		if err := a.sums[i].Merge(p.Sums[i]); err != nil {
			return err
		}
	}
	if a.wsum != nil {
		if p.WSum == nil {
			return fmt.Errorf("fl: weighted partial without a weight sum")
		}
		if err := a.wsum.Merge(p.WSum); err != nil {
			return err
		}
	}
	a.n += p.Clients
	return nil
}

// Count implements Aggregator; for a root it counts clients (summed from
// partials), not sessions.
func (a *ExactAggregator) Count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}

// Commit implements Aggregator: round each exact sum once, then apply the
// legacy rule's commit expression.
func (a *ExactAggregator) Commit(params []*tensor.Tensor) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.n == 0 {
		return
	}
	switch a.rule {
	case AggFedSGD:
		inv := 1 / float64(a.n)
		for i, p := range params {
			d := p.Data()
			for j := range d {
				d[j] += inv * a.sums[i].Round(j)
			}
		}
	case AggFedAvg:
		inv := 1 / float64(a.n)
		for i, p := range params {
			p.Zero()
			d := p.Data()
			for j := range d {
				d[j] += inv * a.sums[i].Round(j)
			}
		}
	case AggWeighted:
		ws := a.wsum.Round(0)
		if ws == 0 {
			return
		}
		inv := 1 / ws
		for i, p := range params {
			p.Zero()
			d := p.Data()
			for j := range d {
				d[j] += inv * a.sums[i].Round(j)
			}
		}
	}
}

// TakePartial snapshots the fold as a partial for upstream forwarding. The
// returned partial aliases the aggregator's accumulators and is valid
// until the next Begin; serialize or merge it before reusing the edge.
func (a *ExactAggregator) TakePartial() *Partial {
	a.mu.Lock()
	defer a.mu.Unlock()
	return &Partial{Rule: a.rule, Clients: a.n, WSum: a.wsum, Shapes: a.shapes, Sums: a.sums}
}

// EdgeFold wraps an edge's exact aggregator so a RoundServer can drive it
// without ever committing: the edge's round ends with TakePartial, and
// only the root applies an aggregate to parameters.
func EdgeFold(a *ExactAggregator) Aggregator { return edgeFold{a} }

type edgeFold struct{ *ExactAggregator }

func (edgeFold) Commit([]*tensor.Tensor) {}

// --- Tree aggregator -------------------------------------------------------

// TreeAggregator is the in-process multi-level aggregation tree: client
// folds route to their shard's edge, and Commit composes the edge partials
// — fanout-ary, level by level — into a root exact fold before applying
// it. Because composition is exact merge, the committed bits are invariant
// to the shard assignment and fanout; the deployment harness
// (core.RunSimnet) runs the same algebra with the edges behind real
// RoundServers on the simnet fabric.
type TreeAggregator struct {
	topo   Topology
	fanout int
	edges  []*ExactAggregator
	root   *ExactAggregator
}

// NewTree builds a tree fold for an aggregation rule over a shard
// topology. fanout bounds how many partials one compose step merges
// (≤1 = compose all at once).
func NewTree(rule string, topo Topology, fanout int) (*TreeAggregator, error) {
	if topo.Shards < 1 {
		return nil, fmt.Errorf("fl: tree aggregation needs ≥1 shard, got %d", topo.Shards)
	}
	root, err := NewExact(rule)
	if err != nil {
		return nil, err
	}
	t := &TreeAggregator{topo: topo, fanout: fanout, root: root}
	t.edges = make([]*ExactAggregator, topo.Shards)
	for i := range t.edges {
		t.edges[i], _ = NewExact(rule)
	}
	return t, nil
}

// Begin implements Aggregator.
func (t *TreeAggregator) Begin(params []*tensor.Tensor) {
	t.root.Begin(params)
	for _, e := range t.edges {
		e.Begin(params)
	}
}

// Fold implements Aggregator. Without a client identity the update lands
// on shard 0 — exact merge makes placement arithmetically irrelevant;
// identity-aware callers use FoldClient.
func (t *TreeAggregator) Fold(update []*tensor.Tensor) { t.edges[0].Fold(update) }

// FoldWeighted implements WeightedFolder (shard 0, as Fold).
func (t *TreeAggregator) FoldWeighted(update []*tensor.Tensor, weight float64) {
	t.edges[0].FoldWeighted(update, weight)
}

// FoldClient implements ClientFolder: the update folds at its shard's edge.
func (t *TreeAggregator) FoldClient(clientID int, update []*tensor.Tensor, weight float64) {
	t.edges[t.topo.ShardOf(clientID)].FoldWeighted(update, weight)
}

// Count implements Aggregator.
func (t *TreeAggregator) Count() int {
	n := 0
	for _, e := range t.edges {
		n += e.Count()
	}
	return n
}

// Commit implements Aggregator: compose the edge partials fanout-ary into
// the root, then commit the root.
func (t *TreeAggregator) Commit(params []*tensor.Tensor) {
	parts := make([]*Partial, len(t.edges))
	for i, e := range t.edges {
		parts[i] = e.TakePartial()
	}
	f := t.fanout
	if f <= 1 {
		f = len(parts)
	}
	for len(parts) > 1 {
		next := parts[:0]
		for lo := 0; lo < len(parts); lo += f {
			hi := lo + f
			if hi > len(parts) {
				hi = len(parts)
			}
			dst := parts[lo]
			for _, src := range parts[lo+1 : hi] {
				// Same-geometry merges by construction; an error here would
				// be a programming bug, not a data condition.
				if err := dst.Merge(src); err != nil {
					panic(err)
				}
			}
			next = append(next, dst)
		}
		parts = next
	}
	if err := t.root.FoldPartial(parts[0]); err != nil {
		panic(err)
	}
	t.root.Commit(params)
}

// --- Construction ----------------------------------------------------------

// NewAggregatorFor constructs the server fold for an aggregation rule and
// shard topology: shards ≤ 0 is the legacy float fold (NewAggregator,
// byte-identical to every pre-sharding run), shards = 1 the flat exact
// fold (the tree's parity oracle), shards > 1 the aggregation tree. k is
// the population size when known (≤0 falls back to modulo sharding).
//
// Robust rules (median/trimmed/krum) are order statistics over the raw
// update multiset — they are not grouping-invariant, so there is no exact
// partial an edge could forward (a median of shard medians is not the
// median). Any sharded topology combined with a robust rule is a
// configuration error here, up front, rather than a silently wrong commit.
func NewAggregatorFor(rule string, shards, fanout, k int) (Aggregator, error) {
	if shards >= 1 && RobustAggregation(rule) {
		return nil, fmt.Errorf("fl: robust aggregation %q is not grouping-invariant and cannot run on the exact/tree topology (shards=%d); use shards=0", rule, shards)
	}
	switch {
	case shards <= 0:
		return NewAggregator(rule)
	case shards == 1:
		return NewExact(rule)
	default:
		return NewTree(rule, Topology{K: k, Shards: shards}, fanout)
	}
}
