package fl

import "time"

// Clock supplies time to the round schedulers. The streaming runtime and
// the TCP server take their deadline timers from a Clock so tests can
// drive straggler-cutoff and quorum paths deterministically with a fake.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

type systemClock struct{}

func (systemClock) Now() time.Time                         { return time.Now() }
func (systemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// SystemClock is the real wall clock, the default everywhere a Clock is
// left nil.
var SystemClock Clock = systemClock{}
