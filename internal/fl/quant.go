package fl

import (
	"fmt"
	"math"
	"sync"

	"fedcdp/internal/tensor"
)

// Update quantization for the binary wire codec (DSSGD-style lossy
// compression, Shokri & Shmatikov's selective-sharing lineage): each tensor
// is scaled by maxAbs/qmax and rounded to int8 or int16, cutting dense wire
// bytes 8× (int8) or 4× (int16) against raw float64. The rounding error is
// not discarded — QuantState keeps a per-tensor residual that is added back
// into the next round's update before quantizing (error feedback), so the
// bias a single round introduces is repaid over the run instead of
// compounding. Quantization is a binary-codec feature: a session that falls
// back to gob ships the exact float64 payload.

// Quantization widths selectable via ClientOptions.Quant. QuantNone ships
// exact float64 payloads.
const (
	QuantNone  = 0
	QuantInt8  = 8
	QuantInt16 = 16
)

// ValidQuant reports whether q is a recognized quantization width.
func ValidQuant(q int) bool {
	return q == QuantNone || q == QuantInt8 || q == QuantInt16
}

// QuantTensorWire is the quantized wire form of a tensor: per-tensor scale
// plus rounded integer codes. Bits selects the code width (8 or 16); codes
// are held in int16 in memory either way — the binary codec packs them to
// 1 or 2 bytes on the wire. Decoding dequantizes to q·Scale.
type QuantTensorWire struct {
	Shape []int
	Bits  int
	Scale float64
	Q     []int16
}

// qmax returns the largest code magnitude for a width.
func qmax(bits int) float64 {
	if bits == QuantInt8 {
		return 127
	}
	return 32767
}

// Validate reports whether the quantized wire tensor is structurally sound:
// sane shape, matching code count, recognized width, finite non-negative
// scale, codes within the width's range.
func (w QuantTensorWire) Validate() error {
	n, err := validShapeLen(w.Shape)
	if err != nil {
		return err
	}
	if w.Bits != QuantInt8 && w.Bits != QuantInt16 {
		return fmt.Errorf("fl: quantized wire width %d bits not in {8, 16}", w.Bits)
	}
	if len(w.Q) != n {
		return fmt.Errorf("fl: quantized payload length %d does not match shape %v (want %d)", len(w.Q), w.Shape, n)
	}
	if math.IsNaN(w.Scale) || math.IsInf(w.Scale, 0) || w.Scale < 0 {
		return fmt.Errorf("fl: invalid quantization scale %v", w.Scale)
	}
	m := qmax(w.Bits)
	for i, q := range w.Q {
		if float64(q) > m || float64(q) < -m {
			return fmt.Errorf("fl: quantized code %d at offset %d outside ±%g", q, i, m)
		}
	}
	return nil
}

// Dequantize reconstructs the dense wire tensor q·Scale.
func (w QuantTensorWire) Dequantize() TensorWire {
	data := make([]float64, len(w.Q))
	for i, q := range w.Q {
		data[i] = float64(q) * w.Scale
	}
	return TensorWire{Shape: append([]int(nil), w.Shape...), Data: data}
}

// TensorsFromQuant dequantizes quantized wire tensors back to dense
// *tensor.Tensor.
func TensorsFromQuant(ws []QuantTensorWire) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ws))
	for i, w := range ws {
		d := w.Dequantize()
		out[i] = tensor.FromSlice(d.Data, d.Shape...)
	}
	return out
}

// QuantState carries a client's error-feedback residuals across rounds: the
// rounding error of round r's quantization is added to round r+1's update
// before quantizing. Safe for concurrent use; the zero value is ready (nil
// is also accepted everywhere and means no error feedback).
type QuantState struct {
	mu       sync.Mutex
	residual [][]float64
}

// Reset discards all banked residuals. Open-world sessions call it when a
// client returns after an absence: the residual describes the rounding error
// of the LAST update the client shipped, and replaying it against a model
// that moved on for rounds the client never saw injects a stale correction
// rather than repaying a real debt. A fresh arrival starts with no debt.
func (st *QuantState) Reset() {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.residual = nil
	st.mu.Unlock()
}

// QuantizeUpdate converts a dense update to quantized wire form at the given
// width, folding in (and refreshing) st's error-feedback residuals when st is
// non-nil. The input tensors are not modified.
func QuantizeUpdate(ts []*tensor.Tensor, bits int, st *QuantState) []QuantTensorWire {
	if bits != QuantInt8 && bits != QuantInt16 {
		panic(fmt.Sprintf("fl: quantization width %d bits not in {8, 16}", bits))
	}
	var res [][]float64
	if st != nil {
		st.mu.Lock()
		defer st.mu.Unlock()
		if len(st.residual) != len(ts) {
			st.residual = make([][]float64, len(ts))
		}
		res = st.residual
	}
	m := qmax(bits)
	out := make([]QuantTensorWire, len(ts))
	for i, t := range ts {
		data := t.Data()
		w := QuantTensorWire{
			Shape: append([]int(nil), t.Shape()...),
			Bits:  bits,
			Q:     make([]int16, len(data)),
		}
		var e []float64
		if res != nil {
			if len(res[i]) != len(data) {
				res[i] = make([]float64, len(data))
			}
			e = res[i]
		}
		// Pass 1: the scale is maxAbs of the residual-corrected update.
		var maxAbs float64
		for j, v := range data {
			if e != nil {
				v += e[j]
			}
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			// All-zero tensor: zero scale, zero codes, residual unchanged.
			out[i] = w
			continue
		}
		w.Scale = maxAbs / m
		// Pass 2: round, clamp, and bank the rounding error.
		for j, v := range data {
			if e != nil {
				v += e[j]
			}
			q := math.RoundToEven(v / w.Scale)
			if q > m {
				q = m
			} else if q < -m {
				q = -m
			}
			w.Q[j] = int16(q)
			if e != nil {
				e[j] = v - q*w.Scale
			}
		}
		out[i] = w
	}
	return out
}
