package tensor

import (
	"math"
	"math/rand"
	"sort"
)

// RNG is a deterministic random source with convenience samplers used across
// the library. It wraps math/rand with an explicit seed so every component
// can be driven from a root seed via Split, making distributed experiments
// reproducible regardless of goroutine scheduling.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child generator from this RNG's seed and a
// stream label. The same (seed, labels...) always yields the same child,
// so concurrent consumers can be given stable streams.
func Split(seed int64, labels ...int64) *RNG {
	return NewRNG(int64(mixLabels(seed, labels)))
}

// mixLabels folds a label path into a derived seed. SplitMix64-style
// mixing keeps children statistically independent for adjacent labels.
func mixLabels(seed int64, labels []int64) uint64 {
	z := uint64(seed)
	for _, l := range labels {
		z += 0x9e3779b97f4a7c15 ^ uint64(l)*0xbf58476d1ce4e5b9
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
	}
	return z
}

// Reseed re-derives this generator in place to the stream Split(seed,
// labels...) would return, without allocating a new source. Hot loops that
// need a fresh child stream per item (per-client dropout coins, per-client
// training RNGs) reseed one long-lived generator instead of allocating
// Split garbage per item; the emitted stream is bit-identical to a fresh
// Split child.
func (g *RNG) Reseed(seed int64, labels ...int64) {
	g.r.Seed(int64(mixLabels(seed, labels)))
}

// Float64 returns a uniform sample in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Normal returns a sample from N(mean, std²).
func (g *RNG) Normal(mean, std float64) float64 {
	return mean + std*g.r.NormFloat64()
}

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// FillNormal fills t with i.i.d. N(mean, std²) samples.
func (g *RNG) FillNormal(t *Tensor, mean, std float64) {
	d := t.Data()
	for i := range d {
		d[i] = mean + std*g.r.NormFloat64()
	}
}

// FillUniform fills t with i.i.d. Uniform[lo,hi) samples.
func (g *RNG) FillUniform(t *Tensor, lo, hi float64) {
	d := t.Data()
	for i := range d {
		d[i] = lo + (hi-lo)*g.r.Float64()
	}
}

// AddNormal adds i.i.d. N(0, std²) noise to t in place.
func (g *RNG) AddNormal(t *Tensor, std float64) {
	if std == 0 {
		return
	}
	d := t.Data()
	for i := range d {
		d[i] += std * g.r.NormFloat64()
	}
}

// Xavier fills a (fanOut×fanIn...) weight tensor with Glorot-uniform samples.
func (g *RNG) Xavier(t *Tensor, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	g.FillUniform(t, -limit, limit)
}

// SampleWithReplacement returns n indices drawn uniformly with replacement
// from [0,pop).
func (g *RNG) SampleWithReplacement(pop, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = g.r.Intn(pop)
	}
	return out
}

// SampleWithoutReplacement returns n distinct indices drawn uniformly from
// [0,pop). It panics if n > pop.
func (g *RNG) SampleWithoutReplacement(pop, n int) []int {
	if n > pop {
		panic("tensor: sample size exceeds population")
	}
	p := g.r.Perm(pop)
	return p[:n]
}

// SampleDistinctFloyd returns n distinct indices drawn uniformly from
// [0,pop) in O(n) work and memory via Floyd's algorithm — the sublinear
// alternative to SampleWithoutReplacement's O(pop) permutation, for
// populations far larger than the sample. The result is sorted ascending
// (a canonical order: Floyd's insertion order is not a uniform shuffle, so
// exposing it would invite misuse). It panics if n > pop.
func (g *RNG) SampleDistinctFloyd(pop, n int) []int {
	if n > pop {
		panic("tensor: sample size exceeds population")
	}
	chosen := make(map[int]struct{}, n)
	for j := pop - n; j < pop; j++ {
		t := g.r.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			chosen[j] = struct{}{}
		} else {
			chosen[t] = struct{}{}
		}
	}
	out := make([]int, 0, n)
	for v := range chosen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
