package tensor

import (
	"math"
	"testing"
)

func TestCounterRNGDeterministic(t *testing.T) {
	c := NewCounterRNG(42, 1, 2, 3)
	for ctr := uint64(0); ctr < 100; ctr++ {
		if c.Uint64At(ctr) != c.Uint64At(ctr) {
			t.Fatal("Uint64At must be a pure function of the counter")
		}
		if c.NormalAt(ctr) != c.NormalAt(ctr) {
			t.Fatal("NormalAt must be a pure function of the counter")
		}
	}
	if NewCounterRNG(42, 1, 2, 3).key != c.key {
		t.Fatal("same (seed, labels) must yield the same key")
	}
	if NewCounterRNG(42, 1, 2, 4).key == c.key {
		t.Fatal("different labels must yield different keys")
	}
	if c.Derive(5).key == c.Derive(6).key {
		t.Fatal("Derive with different labels must diverge")
	}
}

func TestCounterRNGDeriveOrderSensitive(t *testing.T) {
	c := NewCounterRNG(7)
	if c.Derive(1, 2).key == c.Derive(2, 1).key {
		t.Fatal("label order must matter (key is a hash chain, not a sum)")
	}
	if c.Derive(1).Derive(2).key != c.Derive(1, 2).key {
		t.Fatal("chained Derive must equal the flattened label list")
	}
}

// TestCounterNormalMoments pins the ziggurat sampler's mean, standard
// deviation, skew proxy and kurtosis proxy to N(0,1) within Monte-Carlo
// tolerance, alongside the same estimate from math/rand as a sanity anchor.
func TestCounterNormalMoments(t *testing.T) {
	const n = 200000
	c := NewCounterRNG(1, 99)
	var sum, sumSq, sumCu, sumQu float64
	for i := 0; i < n; i++ {
		v := c.NormalAt(uint64(i))
		sum += v
		sumSq += v * v
		sumCu += v * v * v
		sumQu += v * v * v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("variance = %v, want ~1", variance)
	}
	if skew := sumCu / n; math.Abs(skew) > 0.03 {
		t.Fatalf("third moment = %v, want ~0", skew)
	}
	if kurt := sumQu / n; math.Abs(kurt-3) > 0.1 {
		t.Fatalf("fourth moment = %v, want ~3", kurt)
	}
}

// TestCounterNormalTails checks the ziggurat's tail mass: P(|X| > 2) and
// P(|X| > 3) against the exact Gaussian values (the tail algorithm is the
// sampler's trickiest branch; a bug there shows up here first).
func TestCounterNormalTails(t *testing.T) {
	const n = 400000
	c := NewCounterRNG(2, 5)
	var over2, over3 int
	for i := 0; i < n; i++ {
		v := math.Abs(c.NormalAt(uint64(i)))
		if v > 2 {
			over2++
		}
		if v > 3 {
			over3++
		}
	}
	p2 := float64(over2) / n
	p3 := float64(over3) / n
	want2 := math.Erfc(2 / math.Sqrt2) // ≈ 0.0455
	want3 := math.Erfc(3 / math.Sqrt2) // ≈ 0.0027
	if math.Abs(p2-want2) > 0.003 {
		t.Fatalf("P(|X|>2) = %v, want ~%v", p2, want2)
	}
	if math.Abs(p3-want3) > 0.0008 {
		t.Fatalf("P(|X|>3) = %v, want ~%v", p3, want3)
	}
}

// TestCounterUniformChiSquared bins Float64At into 64 equal cells and runs a
// χ² test: 63 degrees of freedom, so the statistic should fall well under
// the p=0.001 critical value (≈103.4) for a healthy generator.
func TestCounterUniformChiSquared(t *testing.T) {
	const (
		n    = 256000
		bins = 64
	)
	counts := make([]int, bins)
	c := NewCounterRNG(3, 11)
	for i := 0; i < n; i++ {
		v := c.Float64At(uint64(i))
		if v < 0 || v >= 1 {
			t.Fatalf("Float64At out of [0,1): %v", v)
		}
		counts[int(v*bins)]++
	}
	expected := float64(n) / bins
	var chi2 float64
	for _, cnt := range counts {
		d := float64(cnt) - expected
		chi2 += d * d / expected
	}
	if chi2 > 103.4 {
		t.Fatalf("χ² = %v over %d bins, exceeds p=0.001 critical value", chi2, bins)
	}
}

// TestCounterKeyIndependence verifies disjoint (labels, counter) streams are
// uncorrelated: the empirical correlation between sibling streams, and
// between a stream and its counter-shifted self, must vanish as 1/√n.
func TestCounterKeyIndependence(t *testing.T) {
	const n = 100000
	base := NewCounterRNG(4)
	a, b := base.Derive(1), base.Derive(2)
	corr := func(x, y func(uint64) float64) float64 {
		var sx, sy, sxy, sxx, syy float64
		for i := 0; i < n; i++ {
			xv, yv := x(uint64(i)), y(uint64(i))
			sx += xv
			sy += yv
			sxy += xv * yv
			sxx += xv * xv
			syy += yv * yv
		}
		cov := sxy/n - sx/n*sy/n
		return cov / math.Sqrt((sxx/n-sx/n*sx/n)*(syy/n-sy/n*sy/n))
	}
	if r := corr(a.NormalAt, b.NormalAt); math.Abs(r) > 0.02 {
		t.Fatalf("sibling streams correlate: r = %v", r)
	}
	if r := corr(a.NormalAt, func(i uint64) float64 { return a.NormalAt(i + n) }); math.Abs(r) > 0.02 {
		t.Fatalf("shifted counter ranges correlate: r = %v", r)
	}
}

// TestBulkMatchesPointwise pins the bulk kernels to the pointwise sampler:
// filling a slice in one call, in shards, or element by element must agree
// bit-for-bit — the property the parallel sanitizer is built on.
func TestBulkMatchesPointwise(t *testing.T) {
	const n = 1000
	c := NewCounterRNG(5, 3)

	whole := make([]float64, n)
	c.FillNormalBulk(whole, 0, 0.5, 2)

	sharded := make([]float64, n)
	for lo := 0; lo < n; lo += 96 { // deliberately uneven shard edges
		hi := lo + 96
		if hi > n {
			hi = n
		}
		c.FillNormalBulk(sharded[lo:hi], uint64(lo), 0.5, 2)
	}
	for i := range whole {
		if whole[i] != sharded[i] {
			t.Fatalf("sharded fill diverges at %d: %v vs %v", i, whole[i], sharded[i])
		}
		if want := 0.5 + 2*c.NormalAt(uint64(i)); whole[i] != want {
			t.Fatalf("bulk fill diverges from pointwise at %d", i)
		}
	}

	add := make([]float64, n)
	for i := range add {
		add[i] = float64(i)
	}
	c.AddNormalBulk(add, 0, 3)
	for i := range add {
		if want := float64(i) + 3*c.NormalAt(uint64(i)); add[i] != want {
			t.Fatalf("AddNormalBulk diverges at %d", i)
		}
	}

	fused := make([]float64, n)
	for i := range fused {
		fused[i] = float64(i)
	}
	c.ScaleAddNormalBulk(fused, 0, 0.25, 3)
	for i := range fused {
		if want := float64(i)*0.25 + 3*c.NormalAt(uint64(i)); fused[i] != want {
			t.Fatalf("ScaleAddNormalBulk diverges at %d", i)
		}
	}
}

// TestScaleAddNormalBulkEdgeCases covers the std=0 and scale=1 fast paths.
func TestScaleAddNormalBulkEdgeCases(t *testing.T) {
	c := NewCounterRNG(6)
	d := []float64{1, 2, 3}
	c.ScaleAddNormalBulk(d, 0, 2, 0) // pure scaling
	if d[0] != 2 || d[1] != 4 || d[2] != 6 {
		t.Fatalf("std=0 must scale only, got %v", d)
	}
	e := []float64{1, 2, 3}
	f := []float64{1, 2, 3}
	c.ScaleAddNormalBulk(e, 7, 1, 0.5)
	c.AddNormalBulk(f, 7, 0.5)
	for i := range e {
		if e[i] != f[i] {
			t.Fatal("scale=1 must match AddNormalBulk exactly")
		}
	}
}

func BenchmarkCounterNormal(b *testing.B) {
	c := NewCounterRNG(1)
	dst := make([]float64, 4096)
	b.Run("pointwise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.NormalAt(uint64(i))
		}
	})
	b.Run("bulk4096", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.AddNormalBulk(dst, uint64(i)*4096, 1)
		}
	})
	b.Run("mathrand4096", func(b *testing.B) {
		rng := NewRNG(1)
		t := FromSlice(dst, len(dst))
		for i := 0; i < b.N; i++ {
			rng.AddNormal(t, 1)
		}
	})
}
