package tensor

import "fmt"

// convOut returns the output extent for one spatial dimension.
func convOut(in, k, stride, pad int) int { return (in+2*pad-k)/stride + 1 }

// validRange returns the half-open range of output positions [lo, hi) whose
// input coordinate ox*stride - pad + kx lies inside [0, in); positions
// outside it read (or write) padding. Splitting the inner loops on this
// range removes the per-element bounds branch from the hot path.
func validRange(out, in, kx, stride, pad int) (lo, hi int) {
	// ox*stride - pad + kx >= 0  ⇒  ox >= ceil((pad-kx)/stride)
	if d := pad - kx; d > 0 {
		lo = (d + stride - 1) / stride
	}
	// ox*stride - pad + kx <= in-1  ⇒  ox <= floor((in-1+pad-kx)/stride).
	// A negative numerator means no output position is valid; guard it
	// explicitly because Go division truncates toward zero (e.g. -1/2 = 0,
	// which would wrongly admit ox=0).
	d := in - 1 + pad - kx
	if d < 0 {
		return lo, lo
	}
	hi = d/stride + 1
	if hi > out {
		hi = out
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Im2Col expands a (C,H,W) image into a (C·K·K × OH·OW) patch matrix: column
// p holds the receptive field of output position p, row r the values one
// kernel tap (ic,ky,kx) sees across all output positions, with padding
// contributing zeros. After Im2Col, a convolution with weights viewed as an
// (OutC × C·K·K) matrix is the single GEMM W·cols.
//
// x may be any tensor of length C·H·W (row views included). dst must be a
// rank-2 (C·K·K × OH·OW) tensor and is fully overwritten; nil allocates.
func Im2Col(dst, x *Tensor, c, h, w, k, stride, pad int) *Tensor {
	if x.Len() != c*h*w {
		panic(fmt.Sprintf("tensor: Im2Col input length %d, want %d", x.Len(), c*h*w))
	}
	oh, ow := convOut(h, k, stride, pad), convOut(w, k, stride, pad)
	rows, cols := c*k*k, oh*ow
	if dst == nil {
		dst = New(rows, cols)
	} else if len(dst.shape) != 2 || dst.shape[0] != rows || dst.shape[1] != cols {
		panic(fmt.Sprintf("tensor: Im2Col dst shape %v, want (%d,%d)", dst.shape, rows, cols))
	}
	xd, dd := x.data, dst.data
	row := 0
	for ic := 0; ic < c; ic++ {
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				drow := dd[row*cols : (row+1)*cols]
				oxLo, oxHi := validRange(ow, w, kx, stride, pad)
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride - pad + ky
					dseg := drow[oy*ow : (oy+1)*ow]
					if iy < 0 || iy >= h {
						for i := range dseg {
							dseg[i] = 0
						}
						continue
					}
					xrow := xd[(ic*h+iy)*w : (ic*h+iy+1)*w]
					for ox := 0; ox < oxLo; ox++ {
						dseg[ox] = 0
					}
					if stride == 1 {
						copy(dseg[oxLo:oxHi], xrow[oxLo-pad+kx:])
					} else {
						ix := oxLo*stride - pad + kx
						for ox := oxLo; ox < oxHi; ox++ {
							dseg[ox] = xrow[ix]
							ix += stride
						}
					}
					for ox := oxHi; ox < ow; ox++ {
						dseg[ox] = 0
					}
				}
				row++
			}
		}
	}
	return dst
}

// Col2Im scatters a (C·K·K × OH·OW) patch-gradient matrix back to image
// space, summing overlapping taps — the adjoint of Im2Col, used for the
// input gradient of a convolution. dst must have length C·H·W and is
// overwritten; nil allocates a (C,H,W) tensor.
func Col2Im(dst, cols *Tensor, c, h, w, k, stride, pad int) *Tensor {
	oh, ow := convOut(h, k, stride, pad), convOut(w, k, stride, pad)
	rows, colN := c*k*k, oh*ow
	if len(cols.shape) != 2 || cols.shape[0] != rows || cols.shape[1] != colN {
		panic(fmt.Sprintf("tensor: Col2Im cols shape %v, want (%d,%d)", cols.shape, rows, colN))
	}
	if dst == nil {
		dst = New(c, h, w)
	} else if dst.Len() != c*h*w {
		panic(fmt.Sprintf("tensor: Col2Im dst length %d, want %d", dst.Len(), c*h*w))
	}
	dst.Zero()
	cd, dd := cols.data, dst.data
	row := 0
	for ic := 0; ic < c; ic++ {
		for ky := 0; ky < k; ky++ {
			for kx := 0; kx < k; kx++ {
				crow := cd[row*colN : (row+1)*colN]
				oxLo, oxHi := validRange(ow, w, kx, stride, pad)
				for oy := 0; oy < oh; oy++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						continue
					}
					drow := dd[(ic*h+iy)*w : (ic*h+iy+1)*w]
					cseg := crow[oy*ow : (oy+1)*ow]
					ix := oxLo*stride - pad + kx
					for ox := oxLo; ox < oxHi; ox++ {
						drow[ix] += cseg[ox]
						ix += stride
					}
				}
				row++
			}
		}
	}
	return dst
}
