package tensor

import "sync"

// This file is the float32 bulk execution path: the same blocked GEMM
// kernels as matmul.go (one generic body per transpose variant), run at
// float32 with operands converted panel-wise through pooled scratch
// buffers. Tensor storage stays float64 everywhere — layer parameters,
// activations and gradients keep their types and wire encoding — while the
// O(M·N·K) inner loops run at half the memory bandwidth. The float64
// kernels remain the reference oracle: nn's precision parity tests pin the
// fp32 engine within 1e-4 relative of the fp64 engine on the paper models
// (see DESIGN.md, "Precision").

// Precision names for the execution kernels, mirrored by fl.PrecisionFP64 /
// fl.PrecisionFP32 in the round config.
const (
	PrecisionFP64 = "fp64"
	PrecisionFP32 = "fp32"
)

// f32Scratch recycles float32 conversion buffers across GEMM calls. GEMMs
// run concurrently on every client-training goroutine, so the scratch is
// pooled rather than package-global.
var f32Scratch = sync.Pool{New: func() any { s := make([]float32, 0, 4096); return &s }}

// getF32 draws a length-n float32 buffer from the pool.
func getF32(n int) *[]float32 {
	sp := f32Scratch.Get().(*[]float32)
	if cap(*sp) < n {
		*sp = make([]float32, n)
	}
	*sp = (*sp)[:n]
	return sp
}

func putF32(sp *[]float32) { f32Scratch.Put(sp) }

// downconvert fills dst with float32(src).
func downconvert(dst []float32, src []float64) {
	for i, v := range src {
		dst[i] = float32(v)
	}
}

// zeroF32 clears a float32 buffer.
func zeroF32(s []float32) {
	for i := range s {
		s[i] = 0
	}
}

// gemm32 runs one f32 GEMM: operands a (lenA) and b (lenB) are converted
// down, kernel accumulates into a zeroed f32 product buffer, and the result
// is folded into dst — overwriting when add is false, accumulating when
// true (the f32 product is added to the f64 destination, so the destination
// itself never loses precision to a round-trip).
func gemm32(dst, a, b *Tensor, m, n, k int, add bool, kernel func(cd, ad, bd []float32, m, n, k int)) {
	ap, bp, cp := getF32(len(a.data)), getF32(len(b.data)), getF32(m*n)
	downconvert(*ap, a.data)
	downconvert(*bp, b.data)
	zeroF32(*cp)
	kernel(*cp, *ap, *bp, m, n, k)
	dd := dst.data
	if add {
		for i, v := range *cp {
			dd[i] += float64(v)
		}
	} else {
		for i, v := range *cp {
			dd[i] = float64(v)
		}
	}
	putF32(ap)
	putF32(bp)
	putF32(cp)
}

// MatMul32 is MatMul computed at float32 (dst = a·b). dst must be non-nil.
func MatMul32(dst, a, b *Tensor) {
	m, k := mat2(a, "MatMul32")
	_, n := mat2(b, "MatMul32")
	gemm32(dst, a, b, m, n, k, false, addMatMulKernel[float32])
}

// AddMatMul32 is AddMatMul computed at float32 (dst += a·b).
func AddMatMul32(dst, a, b *Tensor) {
	m, k := mat2(a, "AddMatMul32")
	_, n := mat2(b, "AddMatMul32")
	gemm32(dst, a, b, m, n, k, true, addMatMulKernel[float32])
}

// MatMulT32 is MatMulT computed at float32 (dst = a·bᵀ). dst must be
// non-nil.
func MatMulT32(dst, a, b *Tensor) {
	m, k := mat2(a, "MatMulT32")
	n, _ := mat2(b, "MatMulT32")
	gemm32(dst, a, b, m, n, k, false, addMatMulTKernel[float32])
}

// AddMatMulT32 is AddMatMulT computed at float32 (dst += a·bᵀ).
func AddMatMulT32(dst, a, b *Tensor) {
	m, k := mat2(a, "AddMatMulT32")
	n, _ := mat2(b, "AddMatMulT32")
	gemm32(dst, a, b, m, n, k, true, addMatMulTKernel[float32])
}

// MatMulTN32 is MatMulTN computed at float32 (dst = aᵀ·b). dst must be
// non-nil.
func MatMulTN32(dst, a, b *Tensor) {
	k, m := mat2(a, "MatMulTN32")
	_, n := mat2(b, "MatMulTN32")
	gemm32(dst, a, b, m, n, k, false, addMatMulTNKernel[float32])
}

// AddMatMulTN32 is AddMatMulTN computed at float32 (dst += aᵀ·b).
func AddMatMulTN32(dst, a, b *Tensor) {
	k, m := mat2(a, "AddMatMulTN32")
	_, n := mat2(b, "AddMatMulTN32")
	gemm32(dst, a, b, m, n, k, true, addMatMulTNKernel[float32])
}
