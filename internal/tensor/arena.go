package tensor

// Arena is a scratch-tensor recycler for hot loops: Get hands out a zeroed
// tensor, Put returns it for reuse by any later Get of the same element
// count (shape is rewritten on reuse). The federated trainer keeps one arena
// per worker and reuses it across rounds, so steady-state local training
// allocates no data buffers (only constant-size view headers).
//
// An Arena is NOT safe for concurrent use; give each goroutine its own. All
// methods tolerate a nil receiver by falling back to plain allocation, so
// arena-aware code paths need no nil checks.
type Arena struct {
	free map[int][]*Tensor
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{free: make(map[int][]*Tensor)} }

// Get returns a zeroed tensor of the given shape, reusing a returned buffer
// of the same element count when one is available.
func (a *Arena) Get(shape ...int) *Tensor {
	if a == nil {
		return New(shape...)
	}
	n := 1
	for _, d := range shape {
		n *= d
	}
	bufs := a.free[n]
	if len(bufs) == 0 {
		return New(shape...)
	}
	t := bufs[len(bufs)-1]
	a.free[n] = bufs[:len(bufs)-1]
	s := make([]int, len(shape))
	copy(s, shape)
	t.shape = s
	t.Zero()
	return t
}

// Put returns tensors to the arena for reuse. The caller must not touch them
// afterwards. Nil tensors and nil arenas are ignored.
func (a *Arena) Put(ts ...*Tensor) {
	if a == nil {
		return
	}
	for _, t := range ts {
		if t == nil {
			continue
		}
		a.free[len(t.data)] = append(a.free[len(t.data)], t)
	}
}
