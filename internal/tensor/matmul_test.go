package tensor

import (
	"math"
	"runtime"
	"testing"
)

// naiveMatMul is the reference triple loop the kernels are checked against.
func naiveMatMul(a, b *Tensor, ta, tb bool) *Tensor {
	dim := func(t *Tensor, tr bool) (r, c int) {
		r, c = t.shape[0], t.shape[1]
		if tr {
			r, c = c, r
		}
		return
	}
	at := func(t *Tensor, tr bool, i, j int) float64 {
		if tr {
			i, j = j, i
		}
		return t.data[i*t.shape[1]+j]
	}
	m, k := dim(a, ta)
	k2, n := dim(b, tb)
	if k != k2 {
		panic("naiveMatMul dimension mismatch")
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for x := 0; x < k; x++ {
				s += at(a, ta, i, x) * at(b, tb, x, j)
			}
			out.data[i*n+j] = s
		}
	}
	return out
}

func randomMat(rng *RNG, r, c int) *Tensor {
	t := New(r, c)
	rng.FillUniform(t, -1, 1)
	return t
}

func TestMatMulVariantsAgainstNaive(t *testing.T) {
	rng := NewRNG(7)
	// Sizes straddle the parallel threshold so both serial and parallel
	// paths are exercised.
	sizes := [][3]int{{1, 1, 1}, {3, 4, 5}, {17, 9, 23}, {64, 80, 96}}
	for _, s := range sizes {
		m, k, n := s[0], s[1], s[2]
		a := randomMat(rng, m, k)
		b := randomMat(rng, k, n)
		bt := randomMat(rng, n, k)
		at := randomMat(rng, k, m)

		if got, want := MatMul(nil, a, b), naiveMatMul(a, b, false, false); !got.Equal(want, 1e-12) {
			t.Fatalf("MatMul (%d,%d,%d) mismatch", m, k, n)
		}
		if got, want := MatMulT(nil, a, bt), naiveMatMul(a, bt, false, true); !got.Equal(want, 1e-12) {
			t.Fatalf("MatMulT (%d,%d,%d) mismatch", m, k, n)
		}
		if got, want := MatMulTN(nil, at, b), naiveMatMul(at, b, true, false); !got.Equal(want, 1e-12) {
			t.Fatalf("MatMulTN (%d,%d,%d) mismatch", m, k, n)
		}
	}
}

func TestAddMatMulAccumulates(t *testing.T) {
	rng := NewRNG(11)
	a := randomMat(rng, 6, 5)
	b := randomMat(rng, 5, 4)
	dst := randomMat(rng, 6, 4)
	want := dst.Clone()
	want.Add(naiveMatMul(a, b, false, false))
	AddMatMul(dst, a, b)
	if !dst.Equal(want, 1e-12) {
		t.Fatal("AddMatMul did not accumulate into dst")
	}

	bt := randomMat(rng, 4, 5)
	dst2 := randomMat(rng, 6, 4)
	want2 := dst2.Clone()
	want2.Add(naiveMatMul(a, bt, false, true))
	AddMatMulT(dst2, a, bt)
	if !dst2.Equal(want2, 1e-12) {
		t.Fatal("AddMatMulT did not accumulate into dst")
	}

	at := randomMat(rng, 5, 6)
	dst3 := randomMat(rng, 6, 4)
	want3 := dst3.Clone()
	want3.Add(naiveMatMul(at, b, true, false))
	AddMatMulTN(dst3, at, b)
	if !dst3.Equal(want3, 1e-12) {
		t.Fatal("AddMatMulTN did not accumulate into dst")
	}
}

func TestMatMulMatchesMatVecBitwise(t *testing.T) {
	// The batched engine relies on MatMulT reproducing MatVec exactly: one
	// row of X·Wᵀ must be bit-for-bit W·x (same accumulation order).
	rng := NewRNG(3)
	w := randomMat(rng, 13, 29)
	x := New(4, 29)
	rng.FillUniform(x, -2, 2)
	y := MatMulT(nil, x, w)
	for i := 0; i < 4; i++ {
		ref := MatVec(w, x.Row(i))
		for j, v := range ref.Data() {
			if y.At(i, j) != v {
				t.Fatalf("row %d col %d: batched %v != MatVec %v", i, j, y.At(i, j), v)
			}
		}
	}
}

func TestIm2ColShapesAndValues(t *testing.T) {
	// 1×4×4 image, k=3, stride=1, pad=1 → 9×16 patch matrix.
	x := New(1, 4, 4)
	for i := range x.Data() {
		x.Data()[i] = float64(i + 1)
	}
	cols := Im2Col(nil, x, 1, 4, 4, 3, 1, 1)
	if cols.Shape()[0] != 9 || cols.Shape()[1] != 16 {
		t.Fatalf("Im2Col shape %v, want (9,16)", cols.Shape())
	}
	// Center tap (ky=1,kx=1) must reproduce the image itself.
	center := cols.Row(4)
	for i, v := range center.Data() {
		if v != x.Data()[i] {
			t.Fatalf("center tap %d = %v, want %v", i, v, x.Data()[i])
		}
	}
	// Top-left tap (ky=0,kx=0) of output (0,0) reads padding.
	if cols.At(0, 0) != 0 {
		t.Fatalf("padded tap = %v, want 0", cols.At(0, 0))
	}
}

func TestCol2ImIsAdjointOfIm2Col(t *testing.T) {
	// ⟨Im2Col(x), c⟩ == ⟨x, Col2Im(c)⟩ for random x, c — the defining
	// property that makes the GEMM backward pass correct.
	rng := NewRNG(5)
	c, h, w, k, stride, pad := 2, 5, 6, 3, 2, 1
	x := New(c, h, w)
	rng.FillUniform(x, -1, 1)
	cols := Im2Col(nil, x, c, h, w, k, stride, pad)
	cr := New(cols.Shape()...)
	rng.FillUniform(cr, -1, 1)
	lhs := cols.Dot(cr)
	img := Col2Im(nil, cr, c, h, w, k, stride, pad)
	rhs := x.Dot(img)
	if math.Abs(lhs-rhs) > 1e-10 {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestIm2ColKernelLargerThanPaddedExtent(t *testing.T) {
	// Regression: with in+pad < k <= in+2*pad some kernel taps see no valid
	// input at all; truncation-toward-zero division used to admit ox=0 and
	// read out of range. in=1, pad=2, k=4, stride=2 → convOut=1, and taps
	// kx=3 have no valid position.
	x := New(1, 1, 1)
	x.Data()[0] = 5
	cols := Im2Col(nil, x, 1, 1, 1, 4, 2, 2)
	if cols.Shape()[0] != 16 || cols.Shape()[1] != 1 {
		t.Fatalf("cols shape %v, want (16,1)", cols.Shape())
	}
	// Only the tap aligned with the single input pixel (ky=2, kx=2) is
	// non-zero: 0*2-2+2 = 0.
	for r := 0; r < 16; r++ {
		want := 0.0
		if r == 2*4+2 {
			want = 5
		}
		if cols.At(r, 0) != want {
			t.Fatalf("tap %d = %v, want %v", r, cols.At(r, 0), want)
		}
	}
	// And the adjoint must not write out of range either.
	img := Col2Im(nil, cols, 1, 1, 1, 4, 2, 2)
	if img.Data()[0] != 5 {
		t.Fatalf("col2im round trip = %v, want 5", img.Data()[0])
	}
}

func TestParallelRowsUnderRaisedGOMAXPROCS(t *testing.T) {
	// Exercise the goroutine fan-out and slot accounting even on a
	// single-core host, and verify repeated large GEMMs do not deadlock
	// (slots must be released after every call).
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	rng := NewRNG(17)
	a := randomMat(rng, 96, 64)
	b := randomMat(rng, 64, 96)
	want := naiveMatMul(a, b, false, false)
	for i := 0; i < 20; i++ {
		if got := MatMul(nil, a, b); !got.Equal(want, 1e-12) {
			t.Fatalf("parallel MatMul iteration %d mismatch", i)
		}
	}
	// With all slots occupied the kernels must degrade to serial, not block.
	filled := 0
	for {
		select {
		case gemmSlots <- struct{}{}:
			filled++
			continue
		default:
		}
		break
	}
	defer func() {
		for i := 0; i < filled; i++ {
			<-gemmSlots
		}
	}()
	if got := MatMul(nil, a, b); !got.Equal(want, 1e-12) {
		t.Fatal("serial-fallback MatMul mismatch under slot exhaustion")
	}
}

func TestArenaReusesBuffers(t *testing.T) {
	a := NewArena()
	t1 := a.Get(3, 4)
	t1.Fill(7)
	a.Put(t1)
	t2 := a.Get(4, 3) // same element count, different shape
	if t2 != t1 {
		t.Fatal("arena did not reuse the returned buffer")
	}
	if t2.Shape()[0] != 4 || t2.Shape()[1] != 3 {
		t.Fatalf("reused buffer shape %v, want (4,3)", t2.Shape())
	}
	for _, v := range t2.Data() {
		if v != 0 {
			t.Fatal("reused buffer not zeroed")
		}
	}
	t3 := a.Get(3, 4)
	if t3 == t2 {
		t.Fatal("arena handed out an in-use buffer")
	}
}

func TestNilArenaAllocates(t *testing.T) {
	var a *Arena
	x := a.Get(2, 2)
	if x == nil || x.Len() != 4 {
		t.Fatal("nil arena Get must allocate")
	}
	a.Put(x) // must not panic
}

func TestViewAndRow(t *testing.T) {
	x := New(2, 6)
	for i := range x.Data() {
		x.Data()[i] = float64(i)
	}
	v := x.View(3, 4)
	if v.At(2, 3) != 11 {
		t.Fatalf("view value %v, want 11", v.At(2, 3))
	}
	v.Set(-1, 0, 0)
	if x.At(0, 0) != -1 {
		t.Fatal("view does not share storage")
	}
	r := x.Row(1)
	if r.Len() != 6 || r.At(0) != 6 {
		t.Fatalf("row view wrong: len=%d first=%v", r.Len(), r.At(0))
	}
	r.Set(100, 2)
	if x.At(1, 2) != 100 {
		t.Fatal("row view does not share storage")
	}
}
