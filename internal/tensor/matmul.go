package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// This file is the GEMM core of the batched execution engine. All three
// transpose variants share the same structure: the output is split into
// panels of rows, panels are processed by up to GOMAXPROCS goroutines, and
// the reduction dimension is walked in cache-sized blocks with contiguous
// row-major inner loops (axpy/dot style), so the compiler can keep the hot
// loops free of bounds checks and the B panel stays in cache across a row
// panel.
//
// Accumulation order: the NT kernel (MatMulT) reduces each output element
// with a single sequential accumulator in increasing k order — bit-for-bit
// the order MatVec uses, which keeps the batched Dense forward identical to
// the per-example reference. The NN and TN kernels group k-terms in pairs
// (2×2 register blocking halves their store traffic), so they agree with
// the sequential reference to rounding error only; the engine parity tests
// pin the end-to-end difference below 1e-9 (see DESIGN.md).
//
// The kernel bodies are generic over the element type (gemmElem): the
// float64 instantiation is the default engine and the reference oracle; the
// float32 instantiation backs the fp32 bulk path in matmul32.go. One body
// per variant means the two precisions cannot drift apart structurally —
// only in element width.

// gemmElem is the element type a GEMM kernel runs at.
type gemmElem interface{ ~float32 | ~float64 }

const (
	// gemmBlockK is the reduction-dimension block: 256 float64 rows of B
	// (256×N values) are streamed per panel pass, sized for L2 residency at
	// the layer widths this library uses.
	gemmBlockK = 256
	// gemmParallelFlops is the minimum multiply-add count before the kernels
	// spawn goroutines; below it the fork/join overhead dominates.
	gemmParallelFlops = 1 << 16
)

func mat2(t *Tensor, op string) (rows, cols int) {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: %s wants rank-2 matrices, got shape %v", op, t.shape))
	}
	return t.shape[0], t.shape[1]
}

// gemmSlots caps the number of extra CPU-bound GEMM goroutines in flight
// across the whole process. The federated trainer already runs up to
// GOMAXPROCS clients concurrently; without a global cap each client's GEMMs
// would fork another GOMAXPROCS goroutines (P² oversubscription). Slots are
// acquired non-blockingly: a GEMM running while the machine is saturated
// simply executes serially on its own goroutine.
var gemmSlots = make(chan struct{}, runtime.GOMAXPROCS(0))

// parallelRows invokes fn over disjoint sub-ranges of [0, rows), forking
// helper goroutines when the work is large enough to amortize them and free
// gemmSlots remain; the calling goroutine always processes the first range.
func parallelRows(rows int, flops int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	if flops < gemmParallelFlops || workers <= 1 {
		fn(0, rows)
		return
	}
	extra := 0
	for extra < workers-1 {
		select {
		case gemmSlots <- struct{}{}:
			extra++
		default:
			goto acquired
		}
	}
acquired:
	if extra == 0 {
		fn(0, rows)
		return
	}
	chunk := (rows + extra) / (extra + 1)
	spawned := (rows+chunk-1)/chunk - 1
	for ; extra > spawned; extra-- { // chunk rounding may need fewer helpers
		<-gemmSlots
	}
	var wg sync.WaitGroup
	for lo := chunk; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer func() { <-gemmSlots }()
			fn(lo, hi)
		}(lo, hi)
	}
	fn(0, chunk)
	wg.Wait()
}

// MatMul computes dst = a·b for row-major matrices a (M×K) and b (K×N),
// writing into dst (M×N) and returning it. A nil dst is allocated.
func MatMul(dst, a, b *Tensor) *Tensor {
	m, k := mat2(a, "MatMul")
	k2, n := mat2(b, "MatMul")
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	if dst == nil {
		dst = New(m, n)
	} else {
		dm, dn := mat2(dst, "MatMul")
		if dm != m || dn != n {
			panic(fmt.Sprintf("tensor: MatMul dst shape %v, want (%d,%d)", dst.shape, m, n))
		}
		dst.Zero()
	}
	AddMatMul(dst, a, b)
	return dst
}

// AddMatMul computes dst += a·b (shapes as in MatMul), 2×2 register-blocked:
// two rows of dst share each streamed pair of b rows, so four multiply-adds
// are done per two stores.
func AddMatMul(dst, a, b *Tensor) {
	m, k := mat2(a, "AddMatMul")
	_, n := mat2(b, "AddMatMul")
	addMatMulKernel(dst.data, a.data, b.data, m, n, k)
}

// addMatMulKernel is the NN GEMM body: cd += ad·bd for row-major ad (m×k),
// bd (k×n), cd (m×n).
func addMatMulKernel[F gemmElem](cd, ad, bd []F, m, n, k int) {
	parallelRows(m, m*n*k, func(lo, hi int) {
		for kk := 0; kk < k; kk += gemmBlockK {
			kend := kk + gemmBlockK
			if kend > k {
				kend = k
			}
			i := lo
			for ; i+1 < hi; i += 2 {
				ai0 := ad[i*k : (i+1)*k]
				ai1 := ad[(i+1)*k : (i+2)*k]
				ci0 := cd[i*n : (i+1)*n]
				ci1 := cd[(i+1)*n : (i+2)*n : (i+2)*n]
				ci1 = ci1[:len(ci0)]
				kx := kk
				for ; kx+1 < kend; kx += 2 {
					a00, a01 := ai0[kx], ai0[kx+1]
					a10, a11 := ai1[kx], ai1[kx+1]
					b0 := bd[kx*n : (kx+1)*n]
					b0 = b0[:len(ci0)]
					b1 := bd[(kx+1)*n : (kx+2)*n]
					b1 = b1[:len(ci0)]
					for j, bv0 := range b0 {
						bv1 := b1[j]
						ci0[j] += a00*bv0 + a01*bv1
						ci1[j] += a10*bv0 + a11*bv1
					}
				}
				for ; kx < kend; kx++ {
					a0, a1 := ai0[kx], ai1[kx]
					bk := bd[kx*n : (kx+1)*n]
					bk = bk[:len(ci0)]
					for j, bv := range bk {
						ci0[j] += a0 * bv
						ci1[j] += a1 * bv
					}
				}
			}
			for ; i < hi; i++ {
				ai := ad[i*k : (i+1)*k]
				ci := cd[i*n : (i+1)*n]
				kx := kk
				for ; kx+1 < kend; kx += 2 {
					a0, a1 := ai[kx], ai[kx+1]
					b0 := bd[kx*n : (kx+1)*n]
					b0 = b0[:len(ci)]
					b1 := bd[(kx+1)*n : (kx+2)*n]
					b1 = b1[:len(ci)]
					for j, bv0 := range b0 {
						ci[j] += a0*bv0 + a1*b1[j]
					}
				}
				for ; kx < kend; kx++ {
					av := ai[kx]
					if av == 0 {
						continue
					}
					bk := bd[kx*n : (kx+1)*n]
					bk = bk[:len(ci)]
					for j, bv := range bk {
						ci[j] += av * bv
					}
				}
			}
		}
	})
}

// MatMulT computes dst = a·bᵀ for a (M×K) and b (N×K), writing into dst
// (M×N) and returning it. A nil dst is allocated.
func MatMulT(dst, a, b *Tensor) *Tensor {
	m, k := mat2(a, "MatMulT")
	n, k2 := mat2(b, "MatMulT")
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT inner dimension mismatch %v x %vᵀ", a.shape, b.shape))
	}
	if dst == nil {
		dst = New(m, n)
	} else {
		dm, dn := mat2(dst, "MatMulT")
		if dm != m || dn != n {
			panic(fmt.Sprintf("tensor: MatMulT dst shape %v, want (%d,%d)", dst.shape, m, n))
		}
		dst.Zero()
	}
	AddMatMulT(dst, a, b)
	return dst
}

// AddMatMulT computes dst += a·bᵀ (shapes as in MatMulT). Both operand rows
// are contiguous, so each output element is a single dot product; two dots
// share each streamed a-row for instruction-level parallelism, and every
// dot keeps its own sequential accumulator.
func AddMatMulT(dst, a, b *Tensor) {
	m, k := mat2(a, "AddMatMulT")
	n, _ := mat2(b, "AddMatMulT")
	addMatMulTKernel(dst.data, a.data, b.data, m, n, k)
}

// addMatMulTKernel is the NT GEMM body: cd += ad·bdᵀ for row-major ad
// (m×k), bd (n×k), cd (m×n).
func addMatMulTKernel[F gemmElem](cd, ad, bd []F, m, n, k int) {
	parallelRows(m, m*n*k, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := ad[i*k : (i+1)*k]
			ci := cd[i*n : (i+1)*n]
			j := 0
			for ; j+1 < n; j += 2 {
				b0 := bd[j*k : (j+1)*k]
				b0 = b0[:len(ai)]
				b1 := bd[(j+1)*k : (j+2)*k]
				b1 = b1[:len(ai)]
				var s0, s1 F
				for x, av := range ai {
					s0 += av * b0[x]
					s1 += av * b1[x]
				}
				ci[j] += s0
				ci[j+1] += s1
			}
			for ; j < n; j++ {
				bj := bd[j*k : (j+1)*k]
				bj = bj[:len(ai)]
				var s F
				for x, av := range ai {
					s += av * bj[x]
				}
				ci[j] += s
			}
		}
	})
}

// MatMulTN computes dst = aᵀ·b for a (K×M) and b (K×N), writing into dst
// (M×N) and returning it. A nil dst is allocated.
func MatMulTN(dst, a, b *Tensor) *Tensor {
	k, m := mat2(a, "MatMulTN")
	k2, n := mat2(b, "MatMulTN")
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTN outer dimension mismatch %vᵀ x %v", a.shape, b.shape))
	}
	if dst == nil {
		dst = New(m, n)
	} else {
		dm, dn := mat2(dst, "MatMulTN")
		if dm != m || dn != n {
			panic(fmt.Sprintf("tensor: MatMulTN dst shape %v, want (%d,%d)", dst.shape, m, n))
		}
		dst.Zero()
	}
	AddMatMulTN(dst, a, b)
	return dst
}

// AddMatMulTN computes dst += aᵀ·b (shapes as in MatMulTN). Reads of a are
// column-strided, but each loaded element feeds a full contiguous axpy over
// a row of b; 2×2 register blocking (two output rows × two k-terms) halves
// the store traffic.
func AddMatMulTN(dst, a, b *Tensor) {
	k, m := mat2(a, "AddMatMulTN")
	_, n := mat2(b, "AddMatMulTN")
	addMatMulTNKernel(dst.data, a.data, b.data, m, n, k)
}

// addMatMulTNKernel is the TN GEMM body: cd += adᵀ·bd for row-major ad
// (k×m), bd (k×n), cd (m×n).
func addMatMulTNKernel[F gemmElem](cd, ad, bd []F, m, n, k int) {
	parallelRows(m, m*n*k, func(lo, hi int) {
		i := lo
		for ; i+1 < hi; i += 2 {
			ci0 := cd[i*n : (i+1)*n]
			ci1 := cd[(i+1)*n : (i+2)*n : (i+2)*n]
			ci1 = ci1[:len(ci0)]
			kx := 0
			for ; kx+1 < k; kx += 2 {
				a00, a01 := ad[kx*m+i], ad[kx*m+i+1]
				a10, a11 := ad[(kx+1)*m+i], ad[(kx+1)*m+i+1]
				b0 := bd[kx*n : (kx+1)*n]
				b0 = b0[:len(ci0)]
				b1 := bd[(kx+1)*n : (kx+2)*n]
				b1 = b1[:len(ci0)]
				for j, bv0 := range b0 {
					bv1 := b1[j]
					ci0[j] += a00*bv0 + a10*bv1
					ci1[j] += a01*bv0 + a11*bv1
				}
			}
			for ; kx < k; kx++ {
				a0, a1 := ad[kx*m+i], ad[kx*m+i+1]
				bk := bd[kx*n : (kx+1)*n]
				bk = bk[:len(ci0)]
				for j, bv := range bk {
					ci0[j] += a0 * bv
					ci1[j] += a1 * bv
				}
			}
		}
		for ; i < hi; i++ {
			ci := cd[i*n : (i+1)*n]
			kx := 0
			for ; kx+1 < k; kx += 2 {
				a0, a1 := ad[kx*m+i], ad[(kx+1)*m+i]
				b0 := bd[kx*n : (kx+1)*n]
				b0 = b0[:len(ci)]
				b1 := bd[(kx+1)*n : (kx+2)*n]
				b1 = b1[:len(ci)]
				for j, bv0 := range b0 {
					ci[j] += a0*bv0 + a1*b1[j]
				}
			}
			for ; kx < k; kx++ {
				av := ad[kx*m+i]
				if av == 0 {
					continue
				}
				bk := bd[kx*n : (kx+1)*n]
				bk = bk[:len(ci)]
				for j, bv := range bk {
					ci[j] += av * bv
				}
			}
		}
	})
}
