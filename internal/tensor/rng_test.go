package tensor

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce identical streams")
		}
	}
}

func TestSplitStability(t *testing.T) {
	a := Split(7, 1, 2)
	b := Split(7, 1, 2)
	if a.Float64() != b.Float64() {
		t.Fatal("Split must be deterministic in (seed, labels)")
	}
	c := Split(7, 1, 3)
	d := Split(7, 2, 2)
	// Different labels should (overwhelmingly) give different streams.
	if a.Float64() == c.Float64() && c.Float64() == d.Float64() {
		t.Fatal("Split children look identical across labels")
	}
}

func TestNormalMoments(t *testing.T) {
	g := NewRNG(1)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := g.Normal(2, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("mean = %v, want ~2", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Fatalf("std = %v, want ~3", math.Sqrt(variance))
	}
}

func TestFillUniformRange(t *testing.T) {
	g := NewRNG(2)
	tt := New(1000)
	g.FillUniform(tt, -1, 1)
	for _, v := range tt.Data() {
		if v < -1 || v >= 1 {
			t.Fatalf("uniform sample %v outside [-1,1)", v)
		}
	}
}

func TestAddNormalZeroStdIsNoop(t *testing.T) {
	g := NewRNG(3)
	tt := FromSlice([]float64{1, 2, 3}, 3)
	g.AddNormal(tt, 0)
	if tt.At(0) != 1 || tt.At(1) != 2 || tt.At(2) != 3 {
		t.Fatal("AddNormal with std=0 must not modify the tensor")
	}
}

func TestAddNormalChangesValues(t *testing.T) {
	g := NewRNG(3)
	tt := New(100)
	g.AddNormal(tt, 1)
	if tt.L2Norm() == 0 {
		t.Fatal("AddNormal with std=1 must perturb the tensor")
	}
}

func TestXavierBound(t *testing.T) {
	g := NewRNG(4)
	w := New(10, 20)
	g.Xavier(w, 20, 10)
	limit := math.Sqrt(6.0 / 30.0)
	for _, v := range w.Data() {
		if v < -limit || v > limit {
			t.Fatalf("xavier sample %v outside ±%v", v, limit)
		}
	}
}

func TestSampleWithReplacementRange(t *testing.T) {
	g := NewRNG(5)
	idx := g.SampleWithReplacement(10, 1000)
	if len(idx) != 1000 {
		t.Fatalf("got %d samples, want 1000", len(idx))
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if i < 0 || i >= 10 {
			t.Fatalf("index %d out of range", i)
		}
		seen[i] = true
	}
	if len(seen) < 8 {
		t.Fatalf("with-replacement sampling covered only %d/10 values", len(seen))
	}
}

func TestSampleWithoutReplacementDistinct(t *testing.T) {
	g := NewRNG(6)
	idx := g.SampleWithoutReplacement(10, 10)
	seen := map[int]bool{}
	for _, i := range idx {
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when n > pop")
		}
	}()
	NewRNG(7).SampleWithoutReplacement(3, 4)
}

func TestPermIsPermutation(t *testing.T) {
	g := NewRNG(8)
	p := g.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if seen[v] {
			t.Fatalf("duplicate %d in Perm", v)
		}
		seen[v] = true
	}
}

func TestReseedMatchesSplit(t *testing.T) {
	g := NewRNG(0)
	for _, labels := range [][]int64{{4, 0, 0}, {4, 7, 99}, {12, 3}, {5}} {
		g.Reseed(42, labels...)
		fresh := Split(42, labels...)
		for i := 0; i < 16; i++ {
			if a, b := g.Int63(), fresh.Int63(); a != b {
				t.Fatalf("labels %v draw %d: Reseed stream %d != Split stream %d", labels, i, a, b)
			}
		}
	}
}

func TestSampleDistinctFloyd(t *testing.T) {
	g := Split(99, 12, 3)
	got := g.SampleDistinctFloyd(100000, 1000)
	if len(got) != 1000 {
		t.Fatalf("got %d indices, want 1000", len(got))
	}
	seen := map[int]bool{}
	for i, v := range got {
		if v < 0 || v >= 100000 {
			t.Fatalf("index %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate index %d", v)
		}
		seen[v] = true
		if i > 0 && got[i-1] >= v {
			t.Fatalf("result not sorted ascending at %d", i)
		}
	}
	again := Split(99, 12, 3).SampleDistinctFloyd(100000, 1000)
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("same seed drew different cohorts at %d", i)
		}
	}
	if full := Split(1).SampleDistinctFloyd(8, 8); len(full) != 8 || full[0] != 0 || full[7] != 7 {
		t.Fatalf("n == pop should select everyone, got %v", full)
	}
}

func TestSampleDistinctFloydPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when n > pop")
		}
	}()
	NewRNG(7).SampleDistinctFloyd(3, 4)
}
