// Package tensor provides dense float64 tensors and the small set of
// numerical primitives every other package is built on: shape-checked
// element-wise arithmetic, blocked and parallel matrix multiplication
// (MatMul/MatMulT/MatMulTN and their accumulating variants), im2col/col2im
// for convolution lowering, L2 norms and norm clipping, scratch-buffer
// arenas, and deterministic random number generation.
//
// # Precision
//
// Storage is always float64. The GEMM kernels are generic over the element
// type and instantiated for both widths: the 32-suffixed variants
// (MatMul32, AddMatMulT32, …) round their float64 inputs into pooled
// float32 scratch, multiply at float32, and widen the result back — a
// compute format, not a storage format, selected per run through
// PrecisionFP32 (see internal/nn and core.Config.Precision). PrecisionFP64
// is the pinned reference; parity tests bound the fp32 paths against it.
//
// # Determinism contracts
//
// Two generator families cover every random draw in the repository:
//
//   - RNG wraps math/rand behind splittable seeds: Split(seed, labels...)
//     derives a child stream that depends only on (seed, labels...), so any
//     component can be handed a stable stream regardless of goroutine
//     scheduling. A stream's draws are sequential — two consumers must not
//     share one RNG.
//
//   - CounterRNG (crng.go) is the counter-mode engine behind the parallel
//     DP noise path: the k-th Gaussian of stream (seed, labels...) is a
//     pure function of (seed, labels..., k). There is no shared cursor, so
//     any goroutine may generate any sub-range of any stream in any order
//     and the assembled output is bit-identical at every GOMAXPROCS. The
//     fused kernels (FillNormalBulk/AddNormalBulk/ScaleAddNormalBulk)
//     honor the same indexing, so bulk ≡ pointwise exactly.
//
// Reserved Split/CounterRNG label spaces are documented at their owners:
// labels 1–7 under the root seed belong to internal/fl (model init, server
// RNG, cohort sampling, client streams, dropout, counter noise), and the
// 1000/2000/3xxx/4xxx spaces under the dataset seed belong to
// internal/dataset (prototypes, samples, partitioners, label flips).
//
// # Concurrency
//
// Tensors are row-major and mutable; operations that can work in place do
// so and are documented accordingly. A Tensor is not internally
// synchronized — concurrent writers need external coordination. Arena is a
// single-goroutine scratch recycler: each worker owns one. The blocked
// MatMul kernels may shard rows across goroutines internally; their
// accumulation order is fixed, so results do not depend on GOMAXPROCS.
package tensor
