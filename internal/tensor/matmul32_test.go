package tensor

import (
	"fmt"
	"math"
	"testing"
)

// relDiff returns max_i |a_i - b_i| / (1 + |b_i|), the relative metric the
// precision parity bars use.
func relDiff(a, b *Tensor) float64 {
	var m float64
	for i, v := range a.data {
		d := math.Abs(v-b.data[i]) / (1 + math.Abs(b.data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// TestMatMul32ParityWithFP64 pins every f32 GEMM variant against its fp64
// oracle on random operands, at sizes spanning the serial and parallel
// kernel paths and both the paired and tail reduction loops.
func TestMatMul32ParityWithFP64(t *testing.T) {
	const tol = 1e-4
	for _, dims := range [][3]int{{3, 5, 7}, {16, 16, 16}, {33, 31, 129}, {64, 200, 300}} {
		m, n, k := dims[0], dims[1], dims[2]
		t.Run(fmt.Sprintf("%dx%dx%d", m, n, k), func(t *testing.T) {
			rng := NewRNG(int64(m*n + k))
			mk, kn, nk, km, mn := New(m, k), New(k, n), New(n, k), New(k, m), New(m, n)
			rng.FillUniform(mk, -1, 1)
			rng.FillUniform(kn, -1, 1)
			rng.FillUniform(nk, -1, 1)
			rng.FillUniform(km, -1, 1)
			rng.FillUniform(mn, -1, 1)

			cases := []struct {
				name string
				f64  func(dst *Tensor)
				f32  func(dst *Tensor)
			}{
				{"MatMul", func(d *Tensor) { MatMul(d, mk, kn) }, func(d *Tensor) { MatMul32(d, mk, kn) }},
				{"AddMatMul", func(d *Tensor) { AddMatMul(d, mk, kn) }, func(d *Tensor) { AddMatMul32(d, mk, kn) }},
				{"MatMulT", func(d *Tensor) { MatMulT(d, mk, nk) }, func(d *Tensor) { MatMulT32(d, mk, nk) }},
				{"AddMatMulT", func(d *Tensor) { AddMatMulT(d, mk, nk) }, func(d *Tensor) { AddMatMulT32(d, mk, nk) }},
				{"MatMulTN", func(d *Tensor) { MatMulTN(d, km, kn) }, func(d *Tensor) { MatMulTN32(d, km, kn) }},
				{"AddMatMulTN", func(d *Tensor) { AddMatMulTN(d, km, kn) }, func(d *Tensor) { AddMatMulTN32(d, km, kn) }},
			}
			for _, tc := range cases {
				ref, got := mn.Clone(), mn.Clone()
				tc.f64(ref)
				tc.f32(got)
				if d := relDiff(got, ref); d > tol {
					t.Errorf("%s: fp32 diverges from fp64 oracle by %g (tol %g)", tc.name, d, tol)
				}
			}
		})
	}
}

// TestMatMul32Deterministic pins that the f32 path is reproducible: pooled
// scratch reuse must never leak state between calls.
func TestMatMul32Deterministic(t *testing.T) {
	rng := NewRNG(7)
	a, b := New(20, 30), New(30, 25)
	rng.FillUniform(a, -1, 1)
	rng.FillUniform(b, -1, 1)
	first := New(20, 25)
	MatMul32(first, a, b)
	for i := 0; i < 5; i++ {
		again := New(20, 25)
		MatMul32(again, a, b)
		if !first.Equal(again, 0) {
			t.Fatalf("MatMul32 run %d differs from first run", i)
		}
	}
}
