package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	tt := New(2, 3, 4)
	if got := tt.Len(); got != 24 {
		t.Fatalf("Len = %d, want 24", got)
	}
	if s := tt.Shape(); len(s) != 3 || s[0] != 2 || s[1] != 3 || s[2] != 4 {
		t.Fatalf("Shape = %v, want [2 3 4]", s)
	}
	for _, v := range tt.Data() {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestNewPanicsOnNegativeDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(2, -1)
}

func TestFromSliceRoundTrip(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	tt := FromSlice(d, 2, 3)
	if tt.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v, want 6", tt.At(1, 2))
	}
	tt.Set(9, 0, 1)
	if d[1] != 9 {
		t.Fatal("FromSlice must alias the input slice")
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shape/data mismatch")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := a.Clone()
	b.Set(5, 0)
	if a.At(0) != 1 {
		t.Fatal("Clone must not alias")
	}
}

func TestArithmetic(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	a.Add(b)
	want := []float64{5, 7, 9}
	for i, v := range a.Data() {
		if v != want[i] {
			t.Fatalf("Add: a[%d]=%v want %v", i, v, want[i])
		}
	}
	a.Sub(b)
	for i, v := range a.Data() {
		if v != float64(i+1) {
			t.Fatalf("Sub: a[%d]=%v want %v", i, v, i+1)
		}
	}
	a.Scale(2)
	if a.At(2) != 6 {
		t.Fatalf("Scale: got %v want 6", a.At(2))
	}
	a.AddScaled(0.5, b)
	if a.At(0) != 4 {
		t.Fatalf("AddScaled: got %v want 4", a.At(0))
	}
}

func TestDotAndNorm(t *testing.T) {
	a := FromSlice([]float64{3, 4}, 2)
	if got := a.Dot(a); got != 25 {
		t.Fatalf("Dot = %v, want 25", got)
	}
	if got := a.L2Norm(); got != 5 {
		t.Fatalf("L2Norm = %v, want 5", got)
	}
}

func TestClipL2(t *testing.T) {
	a := FromSlice([]float64{3, 4}, 2)
	pre := a.ClipL2(1)
	if pre != 5 {
		t.Fatalf("pre-clip norm = %v, want 5", pre)
	}
	if math.Abs(a.L2Norm()-1) > 1e-12 {
		t.Fatalf("post-clip norm = %v, want 1", a.L2Norm())
	}
	// Below the bound: unchanged.
	b := FromSlice([]float64{0.3, 0.4}, 2)
	b.ClipL2(1)
	if b.At(0) != 0.3 || b.At(1) != 0.4 {
		t.Fatal("ClipL2 must not modify vectors inside the ball")
	}
	// Non-positive bound: no-op.
	c := FromSlice([]float64{3, 4}, 2)
	c.ClipL2(0)
	if c.At(0) != 3 {
		t.Fatal("ClipL2(0) must be a no-op")
	}
}

func TestClipL2PropertyNormBounded(t *testing.T) {
	f := func(xs []float64, c float64) bool {
		if len(xs) == 0 {
			return true
		}
		c = math.Abs(c) + 0.01
		for i, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				xs[i] = 1
			}
		}
		tt := FromSlice(xs, len(xs))
		tt.ClipL2(c)
		return tt.L2Norm() <= c*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClipL2PropertyDirectionPreserved(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		v := New(16)
		g.FillNormal(v, 0, 3)
		orig := v.Clone()
		v.ClipL2(0.5)
		// v must be a non-negative multiple of orig.
		dot := v.Dot(orig)
		return dot >= 0 && math.Abs(dot-v.L2Norm()*orig.L2Norm()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMatVec(t *testing.T) {
	w := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3) // [[1 2 3],[4 5 6]]
	x := FromSlice([]float64{1, 0, -1}, 3)
	y := MatVec(w, x)
	if y.At(0) != -2 || y.At(1) != -2 {
		t.Fatalf("MatVec = %v, want [-2 -2]", y.Data())
	}
}

func TestMatVecT(t *testing.T) {
	w := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	x := FromSlice([]float64{1, 1}, 2)
	y := MatVecT(w, x)
	want := []float64{5, 7, 9}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("MatVecT[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestMatVecTransposeConsistency(t *testing.T) {
	// Property: yᵀ(Wx) == (Wᵀy)ᵀx for random W, x, y.
	f := func(seed int64) bool {
		g := NewRNG(seed)
		w := New(4, 6)
		x := New(6)
		y := New(4)
		g.FillNormal(w, 0, 1)
		g.FillNormal(x, 0, 1)
		g.FillNormal(y, 0, 1)
		lhs := y.Dot(MatVec(w, x))
		rhs := MatVecT(w, y).Dot(x)
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAddOuter(t *testing.T) {
	w := New(2, 2)
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{3, 4}, 2)
	AddOuter(w, 1, a, b)
	want := []float64{3, 4, 6, 8}
	for i, v := range w.Data() {
		if v != want[i] {
			t.Fatalf("AddOuter[%d] = %v, want %v", i, v, want[i])
		}
	}
	AddOuter(w, -1, a, b)
	for _, v := range w.Data() {
		if v != 0 {
			t.Fatal("AddOuter with alpha=-1 must cancel")
		}
	}
}

func TestGroupL2Norm(t *testing.T) {
	a := FromSlice([]float64{3}, 1)
	b := FromSlice([]float64{4}, 1)
	if got := GroupL2Norm([]*Tensor{a, b}); got != 5 {
		t.Fatalf("GroupL2Norm = %v, want 5", got)
	}
}

func TestSliceHelpers(t *testing.T) {
	a := []*Tensor{FromSlice([]float64{1, 2}, 2), FromSlice([]float64{3}, 1)}
	c := CloneAll(a)
	c[0].Set(9, 0)
	if a[0].At(0) != 1 {
		t.Fatal("CloneAll must deep-copy")
	}
	z := ZerosLike(a)
	if z[0].Len() != 2 || z[1].Len() != 1 || z[0].L2Norm() != 0 {
		t.Fatal("ZerosLike shape/zero mismatch")
	}
	AddAllScaled(z, 2, a)
	if z[0].At(1) != 4 || z[1].At(0) != 6 {
		t.Fatal("AddAllScaled wrong result")
	}
	ScaleAll(z, 0.5)
	if z[0].At(1) != 2 {
		t.Fatal("ScaleAll wrong result")
	}
}

func TestEqual(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{1, 2.0000001}, 2)
	if !a.Equal(b, 1e-6) {
		t.Fatal("Equal within tol must hold")
	}
	if a.Equal(b, 1e-9) {
		t.Fatal("Equal outside tol must fail")
	}
	c := FromSlice([]float64{1, 2}, 1, 2)
	if a.Equal(c, 1) {
		t.Fatal("Equal must compare shapes")
	}
}

func TestMaxAbs(t *testing.T) {
	a := FromSlice([]float64{-3, 2}, 2)
	if got := a.MaxAbs(); got != 3 {
		t.Fatalf("MaxAbs = %v, want 3", got)
	}
	if got := New(0).MaxAbs(); got != 0 {
		t.Fatalf("MaxAbs(empty) = %v, want 0", got)
	}
}

func TestStringMentionsShape(t *testing.T) {
	s := New(2, 2).String()
	if s == "" {
		t.Fatal("String must be non-empty")
	}
}
