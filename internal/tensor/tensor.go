package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense, row-major float64 array with an explicit shape.
// The zero value is an empty tensor; use New or FromSlice to construct one.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero-filled tensor with the given shape.
// It panics if any dimension is negative.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: make([]float64, n)}
}

// FromSlice wraps data in a tensor with the given shape. The slice is used
// directly (not copied); it panics if len(data) does not match the shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (want %d)", len(data), shape, n))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: data}
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying flat storage. Mutations are visible to the
// tensor.
func (t *Tensor) Data() []float64 { return t.data }

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set assigns v to the element at the given multi-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// View returns a tensor sharing t's storage under a new shape. The element
// count must match; mutations through either tensor are visible to both.
func (t *Tensor) View(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: view shape %v does not match length %d", shape, len(t.data)))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: t.data}
}

// Row returns a vector view of row i of a rank-2 tensor (shared storage).
func (t *Tensor) Row(i int) *Tensor {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: Row wants a rank-2 tensor, got shape %v", t.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	if i < 0 || i >= rows {
		panic(fmt.Sprintf("tensor: row %d out of range for shape %v", i, t.shape))
	}
	return &Tensor{shape: []int{cols}, data: t.data[i*cols : (i+1)*cols : (i+1)*cols]}
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's elements into t. The tensors must have equal lengths;
// shapes may differ (reshape-on-copy).
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: copy length mismatch %d vs %d", len(t.data), len(src.data)))
	}
	copy(t.data, src.data)
}

// Zero sets every element to 0 in place.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v in place.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// AddScaled adds alpha*other to t in place (axpy). Lengths must match.
func (t *Tensor) AddScaled(alpha float64, other *Tensor) {
	if len(t.data) != len(other.data) {
		panic(fmt.Sprintf("tensor: axpy length mismatch %d vs %d", len(t.data), len(other.data)))
	}
	for i, v := range other.data {
		t.data[i] += alpha * v
	}
}

// Add adds other to t element-wise in place.
func (t *Tensor) Add(other *Tensor) { t.AddScaled(1, other) }

// Sub subtracts other from t element-wise in place.
func (t *Tensor) Sub(other *Tensor) { t.AddScaled(-1, other) }

// Scale multiplies every element by alpha in place.
func (t *Tensor) Scale(alpha float64) {
	for i := range t.data {
		t.data[i] *= alpha
	}
}

// Dot returns the inner product of t and other viewed as flat vectors.
func (t *Tensor) Dot(other *Tensor) float64 {
	if len(t.data) != len(other.data) {
		panic(fmt.Sprintf("tensor: dot length mismatch %d vs %d", len(t.data), len(other.data)))
	}
	var s float64
	for i, v := range t.data {
		s += v * other.data[i]
	}
	return s
}

// L2Norm returns the Euclidean norm of the tensor viewed as a flat vector.
func (t *Tensor) L2Norm() float64 {
	var s float64
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// ClipL2 scales t in place so that its L2 norm is at most c, following the
// DP-SGD convention t <- t / max(1, ||t||/c). It returns the norm before
// clipping. A non-positive c leaves t unchanged and is reported as no-op.
func (t *Tensor) ClipL2(c float64) float64 {
	n := t.L2Norm()
	if c <= 0 || n <= c {
		return n
	}
	t.Scale(c / n)
	return n
}

// MaxAbs returns the largest absolute element value, or 0 for empty tensors.
func (t *Tensor) MaxAbs() float64 {
	var m float64
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Equal reports whether t and other have identical shapes and element-wise
// absolute differences no larger than tol.
func (t *Tensor) Equal(other *Tensor, tol float64) bool {
	if len(t.shape) != len(other.shape) {
		return false
	}
	for i, d := range t.shape {
		if other.shape[i] != d {
			return false
		}
	}
	for i, v := range t.data {
		if math.Abs(v-other.data[i]) > tol {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer with a compact shape+summary rendering.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor(shape=%v, n=%d, norm=%.4g)", t.shape, len(t.data), t.L2Norm())
}

// MatVec computes y = W x for a (rows×cols) matrix W and length-cols vector
// x, returning a new length-rows vector.
func MatVec(w *Tensor, x *Tensor) *Tensor {
	if len(w.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatVec wants rank-2 matrix, got shape %v", w.shape))
	}
	rows, cols := w.shape[0], w.shape[1]
	if x.Len() != cols {
		panic(fmt.Sprintf("tensor: MatVec dimension mismatch %v x %d", w.shape, x.Len()))
	}
	y := New(rows)
	wd, xd, yd := w.data, x.data, y.data
	for r := 0; r < rows; r++ {
		row := wd[r*cols : (r+1)*cols]
		var s float64
		for c, v := range row {
			s += v * xd[c]
		}
		yd[r] = s
	}
	return y
}

// MatVecT computes y = Wᵀ x for a (rows×cols) matrix W and length-rows
// vector x, returning a new length-cols vector.
func MatVecT(w *Tensor, x *Tensor) *Tensor {
	if len(w.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatVecT wants rank-2 matrix, got shape %v", w.shape))
	}
	rows, cols := w.shape[0], w.shape[1]
	if x.Len() != rows {
		panic(fmt.Sprintf("tensor: MatVecT dimension mismatch %vᵀ x %d", w.shape, x.Len()))
	}
	y := New(cols)
	wd, xd, yd := w.data, x.data, y.data
	for r := 0; r < rows; r++ {
		xv := xd[r]
		if xv == 0 {
			continue
		}
		row := wd[r*cols : (r+1)*cols]
		for c, v := range row {
			yd[c] += v * xv
		}
	}
	return y
}

// AddOuter adds alpha * a bᵀ to the (len(a)×len(b)) matrix w in place.
func AddOuter(w *Tensor, alpha float64, a, b *Tensor) {
	if len(w.shape) != 2 || w.shape[0] != a.Len() || w.shape[1] != b.Len() {
		panic(fmt.Sprintf("tensor: AddOuter shape mismatch %v vs %d x %d", w.shape, a.Len(), b.Len()))
	}
	rows, cols := w.shape[0], w.shape[1]
	wd, ad, bd := w.data, a.data, b.data
	for r := 0; r < rows; r++ {
		av := alpha * ad[r]
		if av == 0 {
			continue
		}
		row := wd[r*cols : (r+1)*cols]
		for c := range row {
			row[c] += av * bd[c]
		}
	}
	_ = cols
}

// GroupL2Norm returns the Euclidean norm of a set of tensors viewed as one
// concatenated vector.
func GroupL2Norm(ts []*Tensor) float64 {
	var s float64
	for _, t := range ts {
		for _, v := range t.data {
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// CloneAll deep-copies a slice of tensors.
func CloneAll(ts []*Tensor) []*Tensor {
	out := make([]*Tensor, len(ts))
	for i, t := range ts {
		out[i] = t.Clone()
	}
	return out
}

// ZerosLike returns zero tensors with the same shapes as ts.
func ZerosLike(ts []*Tensor) []*Tensor {
	out := make([]*Tensor, len(ts))
	for i, t := range ts {
		out[i] = New(t.shape...)
	}
	return out
}

// AddAllScaled performs dst[i] += alpha*src[i] for each tensor pair.
func AddAllScaled(dst []*Tensor, alpha float64, src []*Tensor) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: AddAllScaled length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, d := range dst {
		d.AddScaled(alpha, src[i])
	}
}

// ScaleAll multiplies every tensor in ts by alpha in place.
func ScaleAll(ts []*Tensor, alpha float64) {
	for _, t := range ts {
		t.Scale(alpha)
	}
}
