package tensor

import "math"

// This file implements the counter-based noise engine. The sequential *RNG
// (rng.go) draws samples from one mutable math/rand stream, which forces
// every consumer into a single total order — fine for reproducibility, fatal
// for parallelism: the batched execution engine runs forward/backward across
// a worker pool and then serializes on that one stream to noise the results.
//
// CounterRNG removes the ordering constraint. It is a pure function
//
//	sample = f(seed, labels..., counter)
//
// built from SplitMix64-style mixing: the key encodes the stream identity
// (e.g. round, client, iteration, example, layer) and the counter indexes
// the sample within the stream (e.g. the element offset inside a layer).
// Any goroutine can therefore generate any slice of any stream in any order
// with zero coordination and zero allocation, and the result is bit-for-bit
// identical regardless of GOMAXPROCS or scheduling. See DESIGN.md ("Noise
// engine") for the key schedule used by the sanitization pipeline.

// SplitMix64 constants: the golden-ratio increment and the two finalizer
// multipliers (Steele, Lea & Flood 2014; same mixing as Split in rng.go).
const (
	crngGolden = 0x9e3779b97f4a7c15
	crngMixA   = 0xbf58476d1ce4e5b9
	crngMixB   = 0x94d049bb133111eb
)

// mix64 is the SplitMix64 finalizer: a bijective avalanche of all 64 bits.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= crngMixA
	z ^= z >> 27
	z *= crngMixB
	z ^= z >> 31
	return z
}

// CounterRNG is a counter-based deterministic random source. The zero value
// is a valid (seed 0) generator; values are cheap to copy and safe to share
// across goroutines because all methods are pure functions of (key, counter).
type CounterRNG struct {
	key uint64
}

// NewCounterRNG returns the counter generator keyed by (seed, labels...).
// The same arguments always yield the same stream family, mirroring Split's
// contract for the sequential RNG.
func NewCounterRNG(seed int64, labels ...int64) CounterRNG {
	return CounterRNG{key: uint64(seed)}.Derive(labels...)
}

// Derive returns an independent child generator for the given stream labels.
// Each label is folded into the key with a full SplitMix64 finalize, so
// adjacent labels (and different label paths) land on unrelated keys.
func (c CounterRNG) Derive(labels ...int64) CounterRNG {
	z := c.key
	for _, l := range labels {
		z += crngGolden ^ uint64(l)*crngMixA
		z = mix64(z)
	}
	return CounterRNG{key: z}
}

// Uint64At returns the uniform 64-bit sample at the given counter.
func (c CounterRNG) Uint64At(ctr uint64) uint64 {
	return mix64(c.key + ctr*crngGolden)
}

// Float64At returns the uniform [0,1) sample at the given counter.
func (c CounterRNG) Float64At(ctr uint64) float64 {
	return float64(c.Uint64At(ctr)>>11) * (1.0 / (1 << 53))
}

// ctrStream is the slow-path draw stream used by rejection sampling: the
// ziggurat occasionally needs more than one uniform per Gaussian sample, and
// those extra draws must not collide with neighbouring counters' draws. The
// stream is seeded by re-hashing the sample's first (rejected) draw — itself
// already a pure function of (key, counter) — so every counter gets a fresh
// SplitMix64 sequence decorrelated from every other counter's draws.
type ctrStream struct{ state uint64 }

func (s *ctrStream) next() uint64 {
	s.state += crngGolden
	return mix64(s.state)
}

func (s *ctrStream) float64() float64 {
	return float64(s.next()>>11) * (1.0 / (1 << 53))
}

// --- Ziggurat Gaussian sampler (Marsaglia & Tsang 2000, 128 layers) ---

const (
	zigLayers = 128
	zigR      = 3.442619855899      // rightmost layer edge
	zigV      = 9.91256303526217e-3 // area of each layer
	zigM      = 1 << 31             // j is treated as a signed 32-bit coordinate
)

var (
	zigKn [zigLayers]uint32  // acceptance thresholds on |j|
	zigWn [zigLayers]float64 // x-coordinate scale per layer
	zigFn [zigLayers]float64 // density at the layer edge
)

func init() {
	dn, tn := float64(zigR), float64(zigR)
	q := zigV / math.Exp(-0.5*dn*dn)
	zigKn[0] = uint32(dn / q * zigM)
	zigKn[1] = 0
	zigWn[0] = q / zigM
	zigWn[zigLayers-1] = dn / zigM
	zigFn[0] = 1.0
	zigFn[zigLayers-1] = math.Exp(-0.5 * dn * dn)
	for i := zigLayers - 2; i >= 1; i-- {
		dn = math.Sqrt(-2 * math.Log(zigV/dn+math.Exp(-0.5*dn*dn)))
		zigKn[i+1] = uint32(dn / tn * zigM)
		tn = dn
		zigFn[i] = math.Exp(-0.5 * dn * dn)
		zigWn[i] = dn / zigM
	}
}

// zigNormal maps one mixed 64-bit draw to a standard normal. The fast path
// (~98.8% of draws) costs one compare and one multiply on top of the mix
// that produced u; rejections continue on a stream re-seeded from u, so the
// whole sample remains a pure function of the originating (key, counter).
func zigNormal(u uint64) float64 {
	j := int32(uint32(u))            // signed 32-bit x-coordinate
	i := (u >> 32) & (zigLayers - 1) // layer index from independent bits
	abs := uint32(j)
	if j < 0 {
		abs = uint32(-j)
	}
	if abs < zigKn[i] {
		return float64(j) * zigWn[i]
	}
	return zigNormalSlow(u, j, i)
}

// zigNormalSlow resolves a rejected fast-path draw: wedge acceptance for
// layers 1..127, the Marsaglia tail algorithm for layer 0, and full redraws
// from the per-sample stream until acceptance.
func zigNormalSlow(u uint64, j int32, i uint64) float64 {
	s := ctrStream{state: mix64(u)}
	for {
		if i == 0 {
			// Base layer: sample the tail |x| > zigR by exponential wedge.
			for {
				x := -math.Log(s.float64()) / zigR
				y := -math.Log(s.float64())
				if y+y >= x*x {
					if j < 0 {
						return -(zigR + x)
					}
					return zigR + x
				}
			}
		}
		// Wedge: accept x with probability proportional to the density gap.
		x := float64(j) * zigWn[i]
		if zigFn[i]+s.float64()*(zigFn[i-1]-zigFn[i]) < math.Exp(-0.5*x*x) {
			return x
		}
		// Redraw a fresh (coordinate, layer) pair from the sample's stream.
		u = s.next()
		j = int32(uint32(u))
		i = (u >> 32) & (zigLayers - 1)
		abs := uint32(j)
		if j < 0 {
			abs = uint32(-j)
		}
		if abs < zigKn[i] {
			return float64(j) * zigWn[i]
		}
	}
}

// NormalAt returns the N(0,1) sample at the given counter: a pure function
// of (key, ctr) consuming as many hashed draws as the ziggurat needs.
func (c CounterRNG) NormalAt(ctr uint64) float64 {
	return zigNormal(mix64(c.key + ctr*crngGolden))
}

// FillNormalBulk writes N(mean, std²) samples at counters [ctr, ctr+len(dst))
// into dst. Disjoint counter ranges of the same key may be filled from
// different goroutines concurrently; the assembled result is identical to a
// single sequential pass.
func (c CounterRNG) FillNormalBulk(dst []float64, ctr uint64, mean, std float64) {
	base := c.key + ctr*crngGolden
	for i := range dst {
		dst[i] = mean + std*zigNormal(mix64(base))
		base += crngGolden
	}
}

// AddNormalBulk adds std·N(0,1) noise at counters [ctr, ctr+len(dst)) to dst
// in place. Like FillNormalBulk it is sharding-agnostic: noising a slice in
// chunks from many goroutines yields the same bits as one sequential sweep.
func (c CounterRNG) AddNormalBulk(dst []float64, ctr uint64, std float64) {
	if std == 0 {
		return
	}
	base := c.key + ctr*crngGolden
	for i := range dst {
		dst[i] += std * zigNormal(mix64(base))
		base += crngGolden
	}
}

// ScaleAddNormalBulk applies the fused sanitize kernel dst[i] = dst[i]·scale
// + std·N(0,1) at counters [ctr, ctr+len(dst)): clip-scaling and noising in
// a single traversal, the inner loop of dp.SanitizeBatch.
func (c CounterRNG) ScaleAddNormalBulk(dst []float64, ctr uint64, scale, std float64) {
	if std == 0 {
		if scale != 1 {
			for i := range dst {
				dst[i] *= scale
			}
		}
		return
	}
	if scale == 1 {
		c.AddNormalBulk(dst, ctr, std)
		return
	}
	base := c.key + ctr*crngGolden
	for i := range dst {
		dst[i] = dst[i]*scale + std*zigNormal(mix64(base))
		base += crngGolden
	}
}
