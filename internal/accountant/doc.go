// Package accountant implements privacy accounting for the sampled Gaussian
// mechanism: the moments accountant of Abadi et al. (CCS'16) in its RDP
// formulation (Mironov et al.), plus the closed-form bound of the paper's
// Equation (2). It reproduces Table VI of the paper from parameters alone.
//
// The core computation is the Rényi divergence of the sampled Gaussian
// mechanism at order α ("log moment"), following the reference algorithm in
// TensorFlow Privacy: an exact binomial sum for integer α and a two-sided
// erfc-weighted series for fractional α. RDP composes additively over steps
// and converts to (ε,δ)-DP via ε = rdp + log(1/δ)/(α−1), minimized over a
// grid of orders.
//
// The package is pure computation — deterministic, goroutine-safe for
// distinct Accountant values, and independent of the training stack. Its
// callers are internal/core (which annotates run histories with cumulative
// ε after each round: Fed-CDP composes LocalIters steps per round at the
// instance-level rate q = B·Kt/N, Fed-SDP one step per round at the
// client-level rate Kt/K) and the Table VI experiment driver. Accounting
// depends only on (q, σ, steps, δ) — never on the execution engine, fold
// order, or heterogeneity scenario of the run that spent the budget.
// Because the per-step RDP grid depends only on (q, σ), it is memoized
// across rounds and accountants (rdp.go): repeated accumulation at one
// noise scale is a table lookup, bit-identical to direct computation.
//
// Ledger extends the same accounting to open-world populations: one RDP
// accumulator per user (Participate), charged only for committed rounds
// the user was present for, with MaxEpsilon — the worst-exposed user —
// as the run's published ε and MinEpsilon surfacing the exposure spread
// a single global accountant cannot represent. Under uniform
// participation the ledger max is bit-identical to a global Accountant,
// which is what lets open-world runtimes publish it without perturbing
// any closed-world golden. See DESIGN.md, "Open-world population".
package accountant
