package accountant

import "testing"

// The per-user ledger must collapse to the global accountant bit-for-bit
// when every user participates in every round — that identity is what lets
// the open-world runtimes publish the ledger's max as the run's ε without
// perturbing a single closed-world golden.
func TestLedgerStaticParity(t *testing.T) {
	const delta, q, sigma, steps, rounds, users = 1e-5, 0.02, 6.0, 20, 15, 8
	global := New(delta)
	led := NewLedger(delta)
	for r := 0; r < rounds; r++ {
		global.Accumulate(q, sigma, steps)
		for id := 0; id < users; id++ {
			led.Participate(id, q, sigma, steps)
		}
		wantEps, wantOrder := global.Epsilon()
		gotEps, gotOrder, worst := led.MaxEpsilon()
		if gotEps != wantEps || gotOrder != wantOrder {
			t.Fatalf("round %d: ledger max ε (%v @ %v) != global accountant (%v @ %v)",
				r, gotEps, gotOrder, wantEps, wantOrder)
		}
		if worst != 0 {
			t.Fatalf("round %d: uniform participation must tie-break to user 0, got %d", r, worst)
		}
		if minEps, _ := led.MinEpsilon(); minEps != wantEps {
			t.Fatalf("round %d: uniform participation spread min %v != max %v", r, minEps, wantEps)
		}
	}
	if len(led.Users()) != users {
		t.Fatalf("ledger tracks %d users, want %d", len(led.Users()), users)
	}
	for id := 0; id < users; id++ {
		if led.Steps(id) != rounds*steps {
			t.Fatalf("user %d accumulated %d steps, want %d", id, led.Steps(id), rounds*steps)
		}
	}
}

// Uneven exposure must surface as a per-user ε spread with the worst- and
// least-exposed users correctly identified — the quantity a single global
// accountant structurally cannot report.
func TestLedgerSpread(t *testing.T) {
	const delta, q, sigma = 1e-5, 0.02, 6.0
	led := NewLedger(delta)
	led.Participate(3, q, sigma, 100) // heavy participant
	led.Participate(5, q, sigma, 10)  // light participant
	maxEps, _, worst := led.MaxEpsilon()
	minEps, least := led.MinEpsilon()
	if worst != 3 || least != 5 {
		t.Fatalf("worst/least = %d/%d, want 3/5", worst, least)
	}
	if maxEps <= minEps {
		t.Fatalf("spread inverted: max %v ≤ min %v", maxEps, minEps)
	}
	e3, _, ok3 := led.UserEpsilon(3)
	if !ok3 || e3 != maxEps {
		t.Fatalf("UserEpsilon(3) = %v (ok=%v), want max %v", e3, ok3, maxEps)
	}
	if _, _, ok := led.UserEpsilon(99); ok {
		t.Fatal("never-participating user must report ok=false")
	}
	if led.Steps(99) != 0 {
		t.Fatal("never-participating user must report 0 steps")
	}
	// The composition count, not the call count, determines the state: one
	// 100-step charge equals a hundred 1-step charges (up to float summation
	// order — steps×grid vs. repeated adds).
	split := NewLedger(delta)
	for i := 0; i < 100; i++ {
		split.Participate(3, q, sigma, 1)
	}
	se, _, _ := split.UserEpsilon(3)
	if diff := se - e3; diff < -1e-12 || diff > 1e-12 {
		t.Fatalf("split charges ε %v != bulk charge ε %v", se, e3)
	}
	if split.Steps(3) != 100 {
		t.Fatalf("split charges accumulated %d steps, want 100", split.Steps(3))
	}
}

func TestLedgerEmpty(t *testing.T) {
	led := NewLedger(1e-5)
	if eps, order, worst := led.MaxEpsilon(); eps != 0 || order != 0 || worst != -1 {
		t.Fatalf("empty MaxEpsilon = (%v, %v, %d), want (0, 0, -1)", eps, order, worst)
	}
	if eps, least := led.MinEpsilon(); eps != 0 || least != -1 {
		t.Fatalf("empty MinEpsilon = (%v, %d), want (0, -1)", eps, least)
	}
	if len(led.Users()) != 0 {
		t.Fatal("empty ledger has users")
	}
}

// A participant with zero accumulated steps spends nothing — the Epsilon
// zero-composition rule holds per user as it does globally.
func TestLedgerZeroStepsSpendNothing(t *testing.T) {
	led := NewLedger(1e-5)
	led.Participate(1, 0.02, 6.0, 0)
	eps, _, ok := led.UserEpsilon(1)
	if !ok {
		t.Fatal("registered user must report ok=true")
	}
	if eps != 0 {
		t.Fatalf("zero compositions spent ε %v, want exactly 0", eps)
	}
}
