package accountant

import (
	"fmt"
	"math"
	"sync"
)

// logAdd returns log(exp(a) + exp(b)) stably.
func logAdd(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// logSub returns log(exp(a) - exp(b)) for a >= b, stably.
func logSub(a, b float64) float64 {
	v, ok := logSubOK(a, b)
	if !ok {
		panic(fmt.Sprintf("accountant: logSub with a < b (%v < %v)", a, b))
	}
	return v
}

// logSubOK is logSub reporting failure instead of panicking; a negative
// difference indicates numerical breakdown of an alternating series.
func logSubOK(a, b float64) (float64, bool) {
	if math.IsInf(b, -1) {
		return a, true
	}
	if a < b {
		return 0, false
	}
	if a == b {
		return math.Inf(-1), true
	}
	return a + math.Log1p(-math.Exp(b-a)), true
}

// logComb returns log C(n, k) for integers.
func logComb(n, k int) float64 {
	lgN, _ := math.Lgamma(float64(n + 1))
	lgK, _ := math.Lgamma(float64(k + 1))
	lgNK, _ := math.Lgamma(float64(n - k + 1))
	return lgN - lgK - lgNK
}

// logBinomReal returns log|C(alpha, i)| and its sign for real alpha >= 0.
func logBinomReal(alpha float64, i int) (logAbs float64, sign float64) {
	lgA, sA := math.Lgamma(alpha + 1)
	lgI, sI := math.Lgamma(float64(i + 1))
	lgAI, sAI := math.Lgamma(alpha - float64(i) + 1)
	return lgA - lgI - lgAI, float64(sA * sI * sAI)
}

// logErfc returns log(erfc(x)) with an asymptotic expansion when erfc(x)
// underflows (x large), matching the reference implementation.
func logErfc(x float64) float64 {
	r := math.Erfc(x)
	if r == 0 {
		// Asymptotic: log erfc(x) ≈ -x² - log(x√π) - x⁻²/2 + 5x⁻⁴/8 ...
		return -math.Log(math.Pi)/2 - math.Log(x) - x*x -
			0.5*math.Pow(x, -2) + 0.625*math.Pow(x, -4) -
			37.0/24.0*math.Pow(x, -6) + 353.0/64.0*math.Pow(x, -8)
	}
	return math.Log(r)
}

// computeLogAInt computes the log moment log E[...] of the sampled Gaussian
// mechanism at integer order alpha via the exact binomial expansion.
func computeLogAInt(q, sigma float64, alpha int) float64 {
	logA := math.Inf(-1)
	for i := 0; i <= alpha; i++ {
		logCoef := logComb(alpha, i) + float64(i)*math.Log(q) + float64(alpha-i)*math.Log1p(-q)
		s := logCoef + float64(i*i-i)/(2*sigma*sigma)
		logA = logAdd(logA, s)
	}
	return logA
}

// computeLogAFrac computes the log moment at fractional order alpha using the
// two-sided series with erfc tail weights. The alternating series is
// numerically fragile for large sampling rates; ok=false reports breakdown,
// in which case callers fall back to the conservative integer-order bound.
func computeLogAFrac(q, sigma, alpha float64) (logA float64, ok bool) {
	logA0 := math.Inf(-1)
	logA1 := math.Inf(-1)
	z0 := sigma*sigma*math.Log(1/q-1) + 0.5
	for i := 0; ; i++ {
		logCoef, sign := logBinomReal(alpha, i)
		j := alpha - float64(i)
		logT0 := logCoef + float64(i)*math.Log(q) + j*math.Log1p(-q)
		logT1 := logCoef + j*math.Log(q) + float64(i)*math.Log1p(-q)
		logE0 := math.Log(0.5) + logErfc((float64(i)-z0)/(math.Sqrt2*sigma))
		logE1 := math.Log(0.5) + logErfc((z0-j)/(math.Sqrt2*sigma))
		logS0 := logT0 + float64(i)*(float64(i)-1)/(2*sigma*sigma) + logE0
		logS1 := logT1 + j*(j-1)/(2*sigma*sigma) + logE1
		if sign > 0 {
			logA0 = logAdd(logA0, logS0)
			logA1 = logAdd(logA1, logS1)
		} else {
			var ok0, ok1 bool
			logA0, ok0 = logSubOK(logA0, logS0)
			logA1, ok1 = logSubOK(logA1, logS1)
			if !ok0 || !ok1 {
				return 0, false
			}
		}
		if math.Max(logS0, logS1) < -30 && float64(i) > alpha {
			break
		}
		if i > 10000 {
			return 0, false // series failed to converge
		}
	}
	return logAdd(logA0, logA1), true
}

// RDPAtOrder returns the per-step Rényi DP of the sampled Gaussian mechanism
// with sampling rate q and noise scale sigma at order alpha > 1.
func RDPAtOrder(q, sigma, alpha float64) float64 {
	switch {
	case q < 0 || q > 1:
		panic(fmt.Sprintf("accountant: sampling rate %v outside [0,1]", q))
	case alpha <= 1:
		panic(fmt.Sprintf("accountant: RDP order must exceed 1, got %v", alpha))
	case q == 0:
		return 0
	case sigma == 0:
		return math.Inf(1)
	case q == 1:
		// Plain Gaussian mechanism.
		return alpha / (2 * sigma * sigma)
	}
	if alpha == math.Trunc(alpha) {
		return computeLogAInt(q, sigma, int(alpha)) / (alpha - 1)
	}
	if logA, ok := computeLogAFrac(q, sigma, alpha); ok {
		return logA / (alpha - 1)
	}
	// The fractional series broke down (large q): Rényi divergence is
	// nondecreasing in the order, so the next integer order is a valid,
	// conservative upper bound.
	up := math.Ceil(alpha)
	return computeLogAInt(q, sigma, int(up)) / (alpha - 1)
}

// DefaultOrders returns the order grid: the TF-privacy default
// (1.25…63.9, 64) extended with larger orders so small-step compositions are
// not floored by log(1/δ)/(α−1).
func DefaultOrders() []float64 {
	return append([]float64(nil), defaultOrders()...)
}

var (
	defaultOrdersOnce sync.Once
	defaultOrdersGrid []float64
)

// defaultOrders returns the shared default order grid. Callers must not
// mutate it; DefaultOrders hands out copies.
func defaultOrders() []float64 {
	defaultOrdersOnce.Do(func() {
		var orders []float64
		for x := 1.25; x < 10; x += 0.25 {
			orders = append(orders, x)
		}
		for x := 10.0; x <= 64; x += 2 {
			orders = append(orders, x)
		}
		for x := 72.0; x <= 256; x += 8 {
			orders = append(orders, x)
		}
		for x := 288.0; x <= 1024; x += 32 {
			orders = append(orders, x)
		}
		defaultOrdersGrid = orders
	})
	return defaultOrdersGrid
}

// The per-step RDP grid is a pure function of (q, σ) — the composition count
// only scales it — yet every round of every run used to re-derive it from
// Lgamma/log series across ~115 orders, which profiles as ~30% of a simnet
// round at small models. Memoizing the grid per (q, σ) is bit-exact (the
// cached values ARE the computed values) and turns per-round accounting into
// a table lookup after the first round.
type rdpGridKey struct{ q, sigma float64 }

var (
	rdpGridMu    sync.Mutex
	rdpGridCache = map[rdpGridKey][]float64{}
)

// rdpGridCap bounds the cache; past it, grids are computed but not retained
// (a σ-sweep of thousands of distinct scales should not grow memory forever).
const rdpGridCap = 1024

// defaultGridRDP returns RDPAtOrder over the default order grid for (q, σ),
// memoized. The returned slice is shared and must not be mutated.
func defaultGridRDP(q, sigma float64) []float64 {
	key := rdpGridKey{q, sigma}
	rdpGridMu.Lock()
	g, ok := rdpGridCache[key]
	rdpGridMu.Unlock()
	if ok {
		return g
	}
	orders := defaultOrders()
	g = make([]float64, len(orders))
	for i, a := range orders {
		g[i] = RDPAtOrder(q, sigma, a)
	}
	rdpGridMu.Lock()
	if len(rdpGridCache) < rdpGridCap {
		rdpGridCache[key] = g
	}
	rdpGridMu.Unlock()
	return g
}

// Epsilon returns the (ε,δ) guarantee after `steps` compositions of the
// sampled Gaussian mechanism, minimized over orders, together with the
// optimal order. It panics on invalid δ.
func Epsilon(q, sigma float64, steps int, delta float64, orders []float64) (eps, optOrder float64) {
	if delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("accountant: delta %v outside (0,1)", delta))
	}
	var grid []float64
	if len(orders) == 0 {
		orders = defaultOrders()
		grid = defaultGridRDP(q, sigma)
	}
	if steps <= 0 {
		return 0, orders[0]
	}
	best := math.Inf(1)
	bestOrder := orders[0]
	for i, a := range orders {
		var perStep float64
		if grid != nil {
			perStep = grid[i]
		} else {
			perStep = RDPAtOrder(q, sigma, a)
		}
		rdp := float64(steps) * perStep
		e := rdp + math.Log(1/delta)/(a-1)
		if e < best {
			best = e
			bestOrder = a
		}
	}
	return best, bestOrder
}

// AbadiBound is the paper's Equation (2): ε = c₂·q·√(T·log(1/δ))/σ. With
// c₂ = DefaultC2 it reproduces the paper's Table VI large-T entries to <2%.
func AbadiBound(q, sigma float64, steps int, delta, c2 float64) float64 {
	if sigma == 0 {
		return math.Inf(1)
	}
	return c2 * q * math.Sqrt(float64(steps)*math.Log(1/delta)) / sigma
}

// DefaultC2 is the constant in Equation (2) calibrated against the paper's
// reported Table VI values (see EXPERIMENTS.md).
const DefaultC2 = 1.455

// MomentsValid reports whether the moments-accountant premise q < 1/(16σ)
// (Definition 5) holds for the given parameters.
func MomentsValid(q, sigma float64) bool {
	if sigma <= 0 {
		return false
	}
	return q < 1/(16*sigma)
}
