package accountant

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogAddSub(t *testing.T) {
	a, b := math.Log(3.0), math.Log(2.0)
	if got := logAdd(a, b); math.Abs(got-math.Log(5)) > 1e-12 {
		t.Fatalf("logAdd = %v, want log 5", got)
	}
	if got := logSub(a, b); math.Abs(got-math.Log(1)) > 1e-12 {
		t.Fatalf("logSub = %v, want log 1", got)
	}
	ninf := math.Inf(-1)
	if got := logAdd(ninf, b); got != b {
		t.Fatalf("logAdd(-inf,b) = %v, want b", got)
	}
	if got := logSub(a, ninf); got != a {
		t.Fatalf("logSub(a,-inf) = %v, want a", got)
	}
	if got := logSub(a, a); !math.IsInf(got, -1) {
		t.Fatalf("logSub(a,a) = %v, want -inf", got)
	}
}

func TestLogSubPanicsWhenNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for logSub(a<b)")
		}
	}()
	logSub(0, 1)
}

func TestLogComb(t *testing.T) {
	// C(10,3) = 120
	if got := math.Exp(logComb(10, 3)); math.Abs(got-120) > 1e-9 {
		t.Fatalf("C(10,3) = %v, want 120", got)
	}
	if got := math.Exp(logComb(5, 0)); math.Abs(got-1) > 1e-12 {
		t.Fatalf("C(5,0) = %v, want 1", got)
	}
}

func TestLogBinomRealMatchesInteger(t *testing.T) {
	logAbs, sign := logBinomReal(10, 3)
	if sign <= 0 || math.Abs(math.Exp(logAbs)-120) > 1e-8 {
		t.Fatalf("binom(10,3) = %v*%v, want +120", sign, math.Exp(logAbs))
	}
}

func TestLogErfcMatchesDirect(t *testing.T) {
	for _, x := range []float64{-2, 0, 1, 5} {
		want := math.Log(math.Erfc(x))
		if got := logErfc(x); math.Abs(got-want) > 1e-10 {
			t.Fatalf("logErfc(%v) = %v, want %v", x, got, want)
		}
	}
	// Large x: erfc underflows; the asymptotic branch must be finite and
	// close to -x².
	x := 40.0
	got := logErfc(x)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("logErfc(40) = %v", got)
	}
	if math.Abs(got-(-x*x))/x/x > 0.01 {
		t.Fatalf("logErfc(40) = %v, want ≈ %v", got, -x*x)
	}
}

func TestRDPGaussianLimit(t *testing.T) {
	// q=1 is the plain Gaussian mechanism: RDP(α) = α/(2σ²) exactly.
	for _, sigma := range []float64{1, 2, 6} {
		for _, alpha := range []float64{2, 8, 32} {
			want := alpha / (2 * sigma * sigma)
			if got := RDPAtOrder(1, sigma, alpha); math.Abs(got-want) > 1e-12 {
				t.Fatalf("RDP(q=1,σ=%v,α=%v) = %v, want %v", sigma, alpha, got, want)
			}
		}
	}
}

func TestRDPZeroSamplingIsFree(t *testing.T) {
	if got := RDPAtOrder(0, 6, 8); got != 0 {
		t.Fatalf("RDP(q=0) = %v, want 0", got)
	}
}

func TestRDPZeroSigmaIsInfinite(t *testing.T) {
	if got := RDPAtOrder(0.01, 0, 8); !math.IsInf(got, 1) {
		t.Fatalf("RDP(σ=0) = %v, want +inf", got)
	}
}

func TestRDPIntFracConsistency(t *testing.T) {
	// The fractional-order series must agree with the exact integer formula
	// at integer orders.
	for _, alpha := range []float64{2, 4, 16, 64} {
		intVal := computeLogAInt(0.01, 6, int(alpha))
		fracVal, ok := computeLogAFrac(0.01, 6, alpha)
		if !ok {
			t.Fatalf("α=%v: fractional series failed at small q", alpha)
		}
		if math.Abs(intVal-fracVal) > 1e-6*math.Max(1, math.Abs(intVal)) {
			t.Fatalf("α=%v: int %v vs frac %v", alpha, intVal, fracVal)
		}
	}
}

func TestRDPMonotoneInQ(t *testing.T) {
	prev := 0.0
	for _, q := range []float64{0.001, 0.01, 0.05, 0.2} {
		v := RDPAtOrder(q, 6, 16)
		if v <= prev {
			t.Fatalf("RDP not increasing in q at %v: %v <= %v", q, v, prev)
		}
		prev = v
	}
}

func TestRDPMonotoneDecreasingInSigma(t *testing.T) {
	prev := math.Inf(1)
	for _, sigma := range []float64{0.5, 1, 2, 6, 12} {
		v := RDPAtOrder(0.01, sigma, 16)
		if v >= prev {
			t.Fatalf("RDP not decreasing in σ at %v: %v >= %v", sigma, v, prev)
		}
		prev = v
	}
}

func TestRDPPanicsOnBadInputs(t *testing.T) {
	for name, f := range map[string]func(){
		"q>1":  func() { RDPAtOrder(1.5, 6, 2) },
		"α<=1": func() { RDPAtOrder(0.01, 6, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestEpsilonMonotoneInSteps(t *testing.T) {
	prev := 0.0
	for _, steps := range []int{1, 10, 100, 1000, 10000} {
		eps, _ := Epsilon(0.01, 6, steps, 1e-5, nil)
		if eps <= prev {
			t.Fatalf("ε not increasing at %d steps: %v <= %v", steps, eps, prev)
		}
		prev = eps
	}
}

func TestEpsilonSqrtScalingLargeT(t *testing.T) {
	// In the moments-accountant regime ε scales ≈ √T for large T.
	e1, _ := Epsilon(0.01, 6, 2500, 1e-5, nil)
	e2, _ := Epsilon(0.01, 6, 10000, 1e-5, nil)
	ratio := e2 / e1
	if ratio < 1.7 || ratio > 2.4 {
		t.Fatalf("ε(4T)/ε(T) = %v, want ≈ 2 (√ scaling)", ratio)
	}
}

func TestEpsilonPaperRegimeMagnitude(t *testing.T) {
	// The paper's MNIST Fed-CDP setting: q=0.01, σ=6, δ=1e-5, T·L=10000
	// steps. Paper reports ε = 0.8227 (moments accountant); our RDP
	// accountant must land in the same regime.
	eps, _ := Epsilon(0.01, 6, 10000, 1e-5, nil)
	if eps < 0.4 || eps > 1.3 {
		t.Fatalf("ε(paper MNIST regime) = %v, want within [0.4, 1.3]", eps)
	}
}

func TestEpsilonZeroSteps(t *testing.T) {
	eps, _ := Epsilon(0.01, 6, 0, 1e-5, nil)
	if eps != 0 {
		t.Fatalf("ε(0 steps) = %v, want 0", eps)
	}
}

func TestEpsilonPanicsOnBadDelta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for delta=0")
		}
	}()
	Epsilon(0.01, 6, 10, 0, nil)
}

func TestEpsilonGaussianSingleShotReasonable(t *testing.T) {
	// Single Gaussian mechanism with σ=6, δ=1e-5: the classical sufficient
	// condition (Def. 2) gives ε ≈ sqrt(2 log(1.25/δ))/σ ≈ 0.8. The RDP bound
	// must be finite, positive, and not wildly larger.
	eps, _ := Epsilon(1, 6, 1, 1e-5, nil)
	if eps <= 0 || eps > 2 {
		t.Fatalf("ε(single Gaussian σ=6) = %v", eps)
	}
}

func TestAbadiBound(t *testing.T) {
	// Closed form with calibrated c2 reproduces the paper's headline value.
	eps := AbadiBound(0.01, 6, 10000, 1e-5, DefaultC2)
	if math.Abs(eps-0.8227)/0.8227 > 0.02 {
		t.Fatalf("Eq.(2) ε = %v, want ≈ 0.8227 (±2%%)", eps)
	}
	if !math.IsInf(AbadiBound(0.01, 0, 10, 1e-5, DefaultC2), 1) {
		t.Fatal("σ=0 must give infinite ε")
	}
}

func TestAbadiBoundScalesLinearlyInQ(t *testing.T) {
	f := func(seed int64) bool {
		q := 0.001 + float64(seed%100)/1000.0
		a := AbadiBound(q, 6, 100, 1e-5, DefaultC2)
		b := AbadiBound(2*q, 6, 100, 1e-5, DefaultC2)
		return math.Abs(b-2*a) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMomentsValid(t *testing.T) {
	if !MomentsValid(0.01, 6) { // 0.01 < 1/96
		t.Fatal("q=0.01, σ=6 must satisfy q < 1/(16σ)")
	}
	if MomentsValid(0.1, 6) {
		t.Fatal("q=0.1, σ=6 must violate q < 1/(16σ)")
	}
	if MomentsValid(0.01, 0) {
		t.Fatal("σ=0 is never valid")
	}
}

func TestDefaultOrdersSortedAndAboveOne(t *testing.T) {
	orders := DefaultOrders()
	if len(orders) < 50 {
		t.Fatalf("order grid too small: %d", len(orders))
	}
	prev := 1.0
	for _, o := range orders {
		if o <= prev {
			t.Fatalf("orders not strictly increasing at %v", o)
		}
		prev = o
	}
}
