package accountant

import "sort"

// Ledger is the per-user privacy accountant of an open-world federation:
// one Accountant per client id, each accumulating only the compositions of
// the rounds that client was actually exposed to. The global, user-level ε
// of the run is the maximum over the ledgers (differential privacy is a
// per-user guarantee; the worst-exposed user bounds everyone).
//
// On a closed-world run every user participates in the sampling pool of
// every committed round, so every per-user accountant performs the exact
// Accumulate sequence a single global Accountant would — the max then
// collapses to today's global ε bit-for-bit (the per-step RDP grid is
// memoized across accountants, so the floats are literally shared).
// Per-user ε diverges exactly when the population does: a client that
// arrives late, departs early, or churns away misses those rounds' charges
// and retains a strictly smaller spend.
type Ledger struct {
	Delta float64
	users map[int]*Accountant
}

// NewLedger returns an empty ledger for a fixed δ.
func NewLedger(delta float64) *Ledger {
	return &Ledger{Delta: delta, users: map[int]*Accountant{}}
}

// Participate charges client id with `steps` compositions of the sampled
// Gaussian mechanism at sampling rate q and noise scale sigma — one call
// per round the client was in the round's sampling pool. The charge is
// identical to Accountant.Accumulate, so a user who participates in every
// round carries exactly the global accountant's state.
func (l *Ledger) Participate(clientID int, q, sigma float64, steps int) {
	a, ok := l.users[clientID]
	if !ok {
		a = New(l.Delta)
		l.users[clientID] = a
	}
	a.Accumulate(q, sigma, steps)
}

// Users returns the ids that have ever participated, ascending.
func (l *Ledger) Users() []int {
	ids := make([]int, 0, len(l.users))
	for id := range l.users {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// UserEpsilon returns one user's current (ε, optimal order); ok is false
// for users that never participated (their true spend is zero — no
// mechanism ever saw their data).
func (l *Ledger) UserEpsilon(clientID int) (eps, optOrder float64, ok bool) {
	a, found := l.users[clientID]
	if !found {
		return 0, 0, false
	}
	eps, optOrder = a.Epsilon()
	return eps, optOrder, true
}

// Steps returns the compositions accumulated against one user (0 if none).
func (l *Ledger) Steps(clientID int) int {
	if a, ok := l.users[clientID]; ok {
		return a.Steps()
	}
	return 0
}

// MaxEpsilon returns the run's user-level privacy spending: the maximum ε
// over all per-user ledgers with its optimal order, and the id of the
// worst-exposed user (ties resolve to the lowest id, so the answer is
// deterministic). An empty ledger spends nothing and returns zeros.
func (l *Ledger) MaxEpsilon() (eps, optOrder float64, worst int) {
	found := false
	for _, id := range l.Users() {
		e, o, _ := l.UserEpsilon(id)
		if !found || e > eps {
			eps, optOrder, worst = e, o, id
			found = true
		}
	}
	if !found {
		return 0, 0, -1
	}
	return eps, optOrder, worst
}

// MinEpsilon returns the smallest per-user ε among participants with its
// user id — together with MaxEpsilon it bounds the spread an open-world
// run induces. An empty ledger returns zeros.
func (l *Ledger) MinEpsilon() (eps float64, least int) {
	found := false
	for _, id := range l.Users() {
		e, _, _ := l.UserEpsilon(id)
		if !found || e < eps {
			eps, least = e, id
			found = true
		}
	}
	if !found {
		return 0, -1
	}
	return eps, least
}
