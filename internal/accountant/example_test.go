package accountant_test

import (
	"fmt"

	"fedcdp/internal/accountant"
)

// Computing the privacy spending of the paper's MNIST Fed-CDP setting:
// sampling rate q = B·Kt/N = 0.01, noise scale σ = 6, T·L = 10,000
// compositions, δ = 1e-5. The paper's Table VI reports ε = 0.8227.
func ExampleEpsilon() {
	eps, order := accountant.Epsilon(0.01, 6, 10000, 1e-5, nil)
	fmt.Printf("ε = %.4f at RDP order %.2f\n", eps, order)
	// Output: ε = 0.8229 at RDP order 30.00
}

// Tracking spending incrementally across federated rounds.
func ExampleAccountant() {
	acc := accountant.New(1e-5)
	for round := 0; round < 3; round++ {
		acc.Accumulate(0.01, 6, 100) // L=100 local iterations per round
	}
	eps, _ := acc.Epsilon()
	fmt.Printf("after %d steps: ε = %.4f\n", acc.Steps(), eps)
	// Output: after 300 steps: ε = 0.1432
}

// Comparing Fed-CDP and Fed-SDP accounting for the same deployment.
func ExampleFedCDPEpsilon() {
	p := accountant.Params{
		TotalData: 50000, TotalK: 1000, PerRoundKt: 100,
		BatchSize: 5, LocalIters: 100, Rounds: 100,
		Sigma: 6, Delta: 1e-5,
	}
	fmt.Printf("Fed-CDP: ε = %.4f (instance + client level)\n", accountant.FedCDPEpsilon(p))
	fmt.Printf("Fed-SDP: ε = %.4f (client level only)\n", accountant.FedSDPEpsilon(p))
	// Output:
	// Fed-CDP: ε = 0.8229 (instance + client level)
	// Fed-SDP: ε = 0.8494 (client level only)
}
