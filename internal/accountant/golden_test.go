package accountant

import (
	"math"
	"testing"
)

// Regression coverage for the RDP accountant: order/rate/noise
// monotonicity of the per-step RDP, a closed-form cross-check of ε(δ) for
// the unsampled Gaussian mechanism, and pinned golden ε values so any
// change to the series evaluation or the order grid is caught bit-close.

func TestRDPOrderMonotone(t *testing.T) {
	// Rényi divergence is nondecreasing in the order; the sampled-Gaussian
	// RDP inherits that. Across the full grid (fractional orders included)
	// this holds wherever the two-sided series is stable — the
	// moments-accountant regime the paper's parameters live in. For large
	// sampling rates the fractional path deliberately falls back to a
	// conservative integer-order upper bound (see RDPAtOrder), which can
	// exceed later grid values, so those cases assert over integer orders
	// only, where the binomial expansion is exact.
	fullGrid := []struct{ q, sigma float64 }{{0.01, 6}, {0.001, 1}, {0.005, 2}, {1, 6}}
	for _, p := range fullGrid {
		prev := 0.0
		for _, alpha := range DefaultOrders() {
			r := RDPAtOrder(p.q, p.sigma, alpha)
			if r < 0 {
				t.Fatalf("q=%v σ=%v α=%v: negative RDP %v", p.q, p.sigma, alpha, r)
			}
			if r < prev-1e-12 {
				t.Fatalf("q=%v σ=%v: RDP fell from %v to %v at α=%v", p.q, p.sigma, prev, r, alpha)
			}
			prev = r
		}
	}
	intOnly := []struct{ q, sigma float64 }{{0.1, 2}, {0.5, 4}}
	for _, p := range intOnly {
		prev := 0.0
		for alpha := 2.0; alpha <= 256; alpha++ {
			r := RDPAtOrder(p.q, p.sigma, alpha)
			if r < prev-1e-12 {
				t.Fatalf("q=%v σ=%v: integer-order RDP fell from %v to %v at α=%v", p.q, p.sigma, prev, r, alpha)
			}
			prev = r
		}
	}
}

func TestRDPRateAndNoiseMonotone(t *testing.T) {
	// More sampling costs more; more noise costs less.
	for _, alpha := range []float64{1.5, 2, 8, 64} {
		prev := 0.0
		for _, q := range []float64{0.001, 0.01, 0.05, 0.2, 0.5} {
			r := RDPAtOrder(q, 4, alpha)
			if r <= prev {
				t.Fatalf("α=%v: RDP must grow with q, got %v after %v at q=%v", alpha, r, prev, q)
			}
			prev = r
		}
		prevSigma := math.Inf(1)
		for _, sigma := range []float64{0.5, 1, 2, 4, 8} {
			r := RDPAtOrder(0.01, sigma, alpha)
			if r >= prevSigma {
				t.Fatalf("α=%v: RDP must shrink with σ, got %v after %v at σ=%v", alpha, r, prevSigma, sigma)
			}
			prevSigma = r
		}
	}
}

func TestCompositionMonotoneUnderAnyMix(t *testing.T) {
	// Accumulating any further steps — at any rate, any noise — must never
	// decrease ε: privacy only degrades under composition.
	a := New(1e-5)
	prev := 0.0
	mixes := []struct {
		q, sigma float64
		steps    int
	}{
		{0.01, 6, 50}, {0.1, 6, 3}, {0.002, 8, 200}, {0.05, 2, 10}, {0.01, 6, 1},
	}
	for i, m := range mixes {
		a.Accumulate(m.q, m.sigma, m.steps)
		eps, order := a.Epsilon()
		if eps <= prev {
			t.Fatalf("mix %d: ε %v did not grow past %v", i, eps, prev)
		}
		if order <= 1 {
			t.Fatalf("mix %d: optimal order %v must exceed 1", i, order)
		}
		prev = eps
	}
	// Zero further steps leave ε exactly unchanged.
	before, _ := a.Epsilon()
	a.Accumulate(0.5, 1, 0)
	if after, _ := a.Epsilon(); after != before {
		t.Fatalf("zero-step accumulate moved ε: %v → %v", before, after)
	}
}

func TestEpsilonClosedFormGaussian(t *testing.T) {
	// For q=1 the mechanism is the plain Gaussian: per-step RDP is exactly
	// α/(2σ²), so after T steps ε(δ) = min over α of
	// T·α/(2σ²) + log(1/δ)/(α−1). Substituting u = α−1 gives
	// a + a·u + b/u with a = T/(2σ²), b = log(1/δ), minimized at
	// u = √(b/a): the closed form is ε* = a + 2√(ab), attained at
	// α* = 1 + √(b/a). The grid minimum can only exceed the continuous
	// one, and with the default grid's density it does so by well under 1%.
	for _, c := range []struct {
		sigma float64
		steps int
		delta float64
	}{
		{4, 50, 1e-5}, {6, 20, 1e-5}, {2, 10, 1e-6}, {8, 200, 1e-5},
	} {
		a := float64(c.steps) / (2 * c.sigma * c.sigma)
		b := math.Log(1 / c.delta)
		closed := a + 2*math.Sqrt(a*b)
		got, _ := Epsilon(1, c.sigma, c.steps, c.delta, nil)
		if got < closed-1e-9 {
			t.Fatalf("σ=%v T=%d: grid ε %v beat the continuous optimum %v — the RDP is wrong", c.sigma, c.steps, got, closed)
		}
		if (got-closed)/closed > 0.01 {
			t.Fatalf("σ=%v T=%d: grid ε %v is >1%% above the closed form %v — order grid too coarse", c.sigma, c.steps, got, closed)
		}
	}
}

func TestEpsilonGoldenValues(t *testing.T) {
	// Pinned outputs of the full pipeline (series evaluation + order grid).
	// These are regression anchors, not external truths: a legitimate
	// change to the grid or the series must update them consciously.
	cases := []struct {
		q     float64
		sigma float64
		steps int
		delta float64
		eps   float64
		order float64
	}{
		{0.01, 6, 1000, 1e-05, 0.259368189535461, 88},
		{0.01, 6, 10000, 1e-05, 0.822868994830605, 30},
		{0.1, 6, 100, 1e-05, 0.849353202836157, 28},
		{0.002, 2, 400, 1e-06, 0.305179090676444, 48},
		{1, 4, 50, 1e-05, 10.0458933508983, 3.75},
	}
	for _, c := range cases {
		eps, order := Epsilon(c.q, c.sigma, c.steps, c.delta, nil)
		if math.Abs(eps-c.eps) > 1e-12*math.Max(1, c.eps) {
			t.Errorf("ε(q=%v σ=%v T=%d δ=%v) = %.15g, golden %.15g", c.q, c.sigma, c.steps, c.delta, eps, c.eps)
		}
		if order != c.order {
			t.Errorf("optimal order for (q=%v σ=%v T=%d) = %v, golden %v", c.q, c.sigma, c.steps, order, c.order)
		}
	}
	// The incremental accountant reproduces the one-shot goldens exactly.
	a := New(1e-5)
	for i := 0; i < 10; i++ {
		a.Accumulate(0.01, 6, 100)
	}
	eps, _ := a.Epsilon()
	if math.Abs(eps-0.259368189535461) > 1e-12 {
		t.Errorf("incremental ε = %.15g, golden 0.259368189535461", eps)
	}
}
