package accountant

import (
	"math"
	"testing"
)

func paperParams(rounds, localIters int) Params {
	return Params{
		TotalData:  50000,
		TotalK:     1000,
		PerRoundKt: 100,
		BatchSize:  5,
		LocalIters: localIters,
		Rounds:     rounds,
		Sigma:      6,
		Delta:      1e-5,
	}
}

func TestSamplingRates(t *testing.T) {
	p := paperParams(100, 100)
	if q := p.FedCDPSamplingRate(); q != 0.01 {
		t.Fatalf("Fed-CDP q = %v, want 0.01", q)
	}
	if q := p.FedSDPSamplingRate(); q != 0.1 {
		t.Fatalf("Fed-SDP q = %v, want 0.1", q)
	}
}

func TestAccountantMatchesOneShot(t *testing.T) {
	a := New(1e-5)
	a.Accumulate(0.01, 6, 400)
	a.Accumulate(0.01, 6, 600)
	got, _ := a.Epsilon()
	want, _ := Epsilon(0.01, 6, 1000, 1e-5, nil)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("incremental ε = %v, one-shot = %v", got, want)
	}
	if a.Steps() != 1000 {
		t.Fatalf("Steps = %d, want 1000", a.Steps())
	}
}

func TestAccountantHeterogeneousComposition(t *testing.T) {
	// Mixing rates must cost at least as much as the cheaper rate alone.
	a := New(1e-5)
	a.Accumulate(0.01, 6, 100)
	low, _ := a.Epsilon()
	a.Accumulate(0.05, 6, 100)
	mixed, _ := a.Epsilon()
	if mixed <= low {
		t.Fatalf("adding steps reduced ε: %v -> %v", low, mixed)
	}
}

func TestAccountantNegativeStepsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative steps")
		}
	}()
	New(1e-5).Accumulate(0.01, 6, -1)
}

func TestFedCDPLocalItersMatter(t *testing.T) {
	// Table VI: Fed-CDP with L=1 spends far less than with L=100.
	e1 := FedCDPEpsilon(paperParams(100, 1))
	e100 := FedCDPEpsilon(paperParams(100, 100))
	if e1 >= e100 {
		t.Fatalf("ε(L=1)=%v must be < ε(L=100)=%v", e1, e100)
	}
	if e100/e1 < 3 {
		t.Fatalf("ε(L=100)/ε(L=1) = %v, want substantial gap", e100/e1)
	}
}

func TestFedSDPLocalItersIrrelevant(t *testing.T) {
	// Table VI: Fed-SDP ε is identical for L=1 and L=100.
	e1 := FedSDPEpsilon(paperParams(100, 1))
	e100 := FedSDPEpsilon(paperParams(100, 100))
	if e1 != e100 {
		t.Fatalf("Fed-SDP ε must not depend on L: %v vs %v", e1, e100)
	}
}

func TestTableVIOrdering(t *testing.T) {
	// The paper's qualitative Table VI finding at matching round budgets:
	// Fed-CDP (L=100) ≤ Fed-SDP, and both shrink with fewer rounds.
	for _, rounds := range []int{100, 60, 10} {
		p := paperParams(rounds, 100)
		cdp := FedCDPEpsilon(p)
		sdp := FedSDPEpsilon(p)
		if cdp >= sdp {
			t.Fatalf("T=%d: Fed-CDP ε=%v must be < Fed-SDP ε=%v", rounds, cdp, sdp)
		}
	}
}

func TestTableVIRoundsMonotone(t *testing.T) {
	prevCDP, prevSDP := 0.0, 0.0
	for _, rounds := range []int{3, 10, 60, 100} {
		p := paperParams(rounds, 100)
		cdp, sdp := FedCDPEpsilon(p), FedSDPEpsilon(p)
		if cdp <= prevCDP || sdp <= prevSDP {
			t.Fatalf("ε must grow with T: T=%d cdp=%v sdp=%v", rounds, cdp, sdp)
		}
		prevCDP, prevSDP = cdp, sdp
	}
}

func TestAbadiHelpersMatchBound(t *testing.T) {
	p := paperParams(100, 100)
	if got, want := FedCDPAbadi(p), AbadiBound(0.01, 6, 10000, 1e-5, DefaultC2); got != want {
		t.Fatalf("FedCDPAbadi = %v, want %v", got, want)
	}
	if got, want := FedSDPAbadi(p), AbadiBound(0.1, 6, 100, 1e-5, DefaultC2); got != want {
		t.Fatalf("FedSDPAbadi = %v, want %v", got, want)
	}
}

func TestPaperTableVIAbadiValues(t *testing.T) {
	// Eq.(2) with the calibrated c₂ reproduces the paper's large-T Table VI
	// entries within a few percent.
	cases := []struct {
		rounds int
		want   float64
		tol    float64
	}{
		{100, 0.8227, 0.03}, // MNIST / CIFAR-10
		{60, 0.6356, 0.03},  // LFW
		{10, 0.2761, 0.07},  // adult
		{3, 0.1469, 0.05},   // cancer
	}
	for _, tc := range cases {
		got := FedCDPAbadi(paperParams(tc.rounds, 100))
		if math.Abs(got-tc.want)/tc.want > tc.tol {
			t.Errorf("T=%d: Eq2 ε = %v, paper %v (tol %v)", tc.rounds, got, tc.want, tc.tol)
		}
	}
}

func TestAccumulateMatchesUncachedGrid(t *testing.T) {
	// Accumulate serves the per-step RDP grid from the (q, σ) memo; the
	// cached path must be bit-identical to calling RDPAtOrder directly.
	q, sigma := 0.013, 1.1
	a := New(1e-5)
	a.Accumulate(q, sigma, 7)
	a.Accumulate(q, sigma, 3) // second call is a guaranteed cache hit
	orders := DefaultOrders()
	direct := New(1e-5)
	for i, o := range orders {
		direct.rdp[i] = 10 * RDPAtOrder(q, sigma, o)
	}
	direct.steps = 10
	eps, ord := a.Epsilon()
	wantEps, wantOrd := direct.Epsilon()
	if eps != wantEps || ord != wantOrd {
		t.Fatalf("cached ε=%v@%v, direct ε=%v@%v", eps, ord, wantEps, wantOrd)
	}
}
