package accountant

import (
	"fmt"
	"math"
)

// Accountant tracks cumulative RDP across the rounds of a federated-learning
// run and converts to (ε,δ) on demand. It supports heterogeneous steps (the
// sampling rate or noise scale may change between rounds, e.g. under a
// decaying clipping bound the *sensitivity* changes but σ and q do not, so
// the composition is unaffected — see Section VI of the paper).
type Accountant struct {
	Delta  float64
	orders []float64
	rdp    []float64 // cumulative RDP per order
	steps  int
}

// New returns an accountant for a fixed δ using the default order grid.
func New(delta float64) *Accountant {
	orders := defaultOrders()
	return &Accountant{
		Delta:  delta,
		orders: orders,
		rdp:    make([]float64, len(orders)),
	}
}

// Accumulate adds `steps` compositions of the sampled Gaussian mechanism
// with sampling rate q and noise scale sigma. The per-step RDP grid for
// (q, σ) is memoized across accountants (see defaultGridRDP), so repeated
// rounds at the same noise scale cost a lookup, not a log-series.
func (a *Accountant) Accumulate(q, sigma float64, steps int) {
	if steps < 0 {
		panic(fmt.Sprintf("accountant: negative steps %d", steps))
	}
	grid := defaultGridRDP(q, sigma)
	for i := range a.orders {
		a.rdp[i] += float64(steps) * grid[i]
	}
	a.steps += steps
}

// Steps returns the number of accumulated compositions.
func (a *Accountant) Steps() int { return a.steps }

// Epsilon returns the current privacy spending ε and the optimal RDP order.
// Before any composition it reports exactly 0: with no mechanism run the
// guarantee is perfect, and the RDP→(ε, δ) conversion's log(1/δ)/(α−1)
// floor is an artifact of the order grid, not spend.
func (a *Accountant) Epsilon() (eps, optOrder float64) {
	if a.steps == 0 {
		return 0, a.orders[0]
	}
	best := -1.0
	bestOrder := a.orders[0]
	for i, o := range a.orders {
		e := a.rdp[i] + logInv(a.Delta)/(o-1)
		if best < 0 || e < best {
			best = e
			bestOrder = o
		}
	}
	return best, bestOrder
}

func logInv(delta float64) float64 {
	return -math.Log(delta)
}

// Params bundles the federated configuration needed for accounting.
type Params struct {
	TotalData  int     // N: total training examples across all clients
	TotalK     int     // K: total clients
	PerRoundKt int     // Kt: participating clients per round
	BatchSize  int     // B
	LocalIters int     // L
	Rounds     int     // T
	Sigma      float64 // noise scale
	Delta      float64
}

// FedCDPSamplingRate returns the instance-level sampling rate q = B·Kt/N
// (Section V: local sampling with replacement across clients is equivalent
// to global sampling with replacement).
func (p Params) FedCDPSamplingRate() float64 {
	return float64(p.BatchSize*p.PerRoundKt) / float64(p.TotalData)
}

// FedSDPSamplingRate returns the client-level sampling rate q₂ = Kt/K used
// by Fed-SDP accounting.
func (p Params) FedSDPSamplingRate() float64 {
	return float64(p.PerRoundKt) / float64(p.TotalK)
}

// FedCDPEpsilon returns the (ε,δ) spending of Fed-CDP after T rounds of L
// local iterations: T·L compositions at rate B·Kt/N.
func FedCDPEpsilon(p Params) float64 {
	eps, _ := Epsilon(p.FedCDPSamplingRate(), p.Sigma, p.Rounds*p.LocalIters, p.Delta, nil)
	return eps
}

// FedSDPEpsilon returns the (ε,δ) spending of Fed-SDP after T rounds: T
// compositions at rate Kt/K. The number of local iterations L does not
// enter, because Fed-SDP adds noise once per round to the client update.
func FedSDPEpsilon(p Params) float64 {
	eps, _ := Epsilon(p.FedSDPSamplingRate(), p.Sigma, p.Rounds, p.Delta, nil)
	return eps
}

// FedCDPAbadi returns the paper's Equation (2) closed form for Fed-CDP.
func FedCDPAbadi(p Params) float64 {
	return AbadiBound(p.FedCDPSamplingRate(), p.Sigma, p.Rounds*p.LocalIters, p.Delta, DefaultC2)
}

// FedSDPAbadi returns the paper's Equation (2) closed form for Fed-SDP.
func FedSDPAbadi(p Params) float64 {
	return AbadiBound(p.FedSDPSamplingRate(), p.Sigma, p.Rounds, p.Delta, DefaultC2)
}
