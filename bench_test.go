package fedcdp

// The bench harness: one benchmark per table and figure of the paper
// (regenerating its rows via internal/experiments at a reduced "quick" grid
// — run cmd/tables for the full versions), ablation benchmarks for the
// design decisions called out in DESIGN.md, and micro-benchmarks for the
// performance-critical primitives.
//
// Experiment benchmarks print their report once (first iteration) so that
// bench output doubles as a record of the regenerated rows.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"fedcdp/internal/accountant"
	"fedcdp/internal/attack"
	"fedcdp/internal/core"
	"fedcdp/internal/dataset"
	"fedcdp/internal/dp"
	"fedcdp/internal/experiments"
	"fedcdp/internal/fl"
	"fedcdp/internal/nn"
	"fedcdp/internal/tensor"
)

var printOnce sync.Map

func runExperiment(b *testing.B, name string, scale float64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(name, experiments.Options{Scale: scale, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		if _, done := printOnce.LoadOrStore(name, true); !done {
			rep.Fprint(os.Stdout)
		}
	}
}

// BenchmarkTable1 regenerates Table I (dataset setup, non-private accuracy
// and per-iteration cost).
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1", 1) }

// BenchmarkTable2 regenerates Table II (accuracy by K, Kt/K and method) on
// the quick grid.
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2", 0.5) }

// BenchmarkTable3 regenerates Table III (ms per local iteration by method).
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3", 1) }

// BenchmarkTable4 regenerates Table IV (accuracy by clipping bound) on the
// quick benchmark subset.
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4", 0.5) }

// BenchmarkTable5 regenerates Table V (accuracy by noise scale) on the quick
// benchmark subset.
func BenchmarkTable5(b *testing.B) { runExperiment(b, "table5", 0.5) }

// BenchmarkTable6 regenerates Table VI (privacy composition) at the paper's
// exact parameters.
func BenchmarkTable6(b *testing.B) { runExperiment(b, "table6", 1) }

// BenchmarkTable7 regenerates Table VII (attack effectiveness by defense).
func BenchmarkTable7(b *testing.B) { runExperiment(b, "table7", 0.5) }

// BenchmarkFig1 regenerates Figure 1b (attack demos on non-private FL).
func BenchmarkFig1(b *testing.B) { runExperiment(b, "fig1", 0.5) }

// BenchmarkFig3 regenerates Figure 3 (gradient-norm decay).
func BenchmarkFig3(b *testing.B) { runExperiment(b, "fig3", 1) }

// BenchmarkFig4 regenerates Figure 4 (per-defense resilience matrix, LFW).
func BenchmarkFig4(b *testing.B) { runExperiment(b, "fig4", 0.5) }

// BenchmarkFig5 regenerates Figure 5 (communication-efficient FL).
func BenchmarkFig5(b *testing.B) { runExperiment(b, "fig5", 0.5) }

// --- Ablation benches (design decisions from DESIGN.md) ---

// BenchmarkAblationPerExampleVsBatch quantifies the cost of per-example
// gradient materialization (required by Fed-CDP) against batched
// accumulation (the non-private fast path) — the mechanism behind Table III.
func BenchmarkAblationPerExampleVsBatch(b *testing.B) {
	spec, err := dataset.Get("mnist")
	if err != nil {
		b.Fatal(err)
	}
	ds := dataset.New(spec, 1)
	cd := ds.Client(0)
	m := nn.Build(spec.ModelSpec(), tensor.NewRNG(1))
	xs, ys := cd.Batch(0, 5)

	b.Run("per-example", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batch := tensor.ZerosLike(m.Grads())
			for j, x := range xs {
				_, g := m.ExampleGradient(x, ys[j])
				tensor.AddAllScaled(batch, 0.2, g)
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.ZeroGrads()
			for j, x := range xs {
				logits := m.Forward(x)
				_, g := nn.SoftmaxCrossEntropy(logits, ys[j])
				m.BackwardFromLoss(g)
			}
		}
	})
}

// BenchmarkAblationFlatVsLayerClip compares the paper's per-layer clipping
// against flat whole-gradient clipping (Abadi et al.), reporting final
// accuracy for each.
func BenchmarkAblationFlatVsLayerClip(b *testing.B) {
	run := func(b *testing.B, flat bool) {
		for i := 0; i < b.N; i++ {
			spec, _ := dataset.Get("mnist")
			ds := dataset.New(spec, 42)
			hist, err := fl.Run(fl.Config{
				Data: ds, Model: spec.ModelSpec(),
				K: 12, Kt: 6, Rounds: 12,
				Round:       fl.RoundConfig{BatchSize: 5, LocalIters: 20, LR: spec.LR},
				Strategy:    core.FedCDP{Clip: dp.FixedClip{C: 4}, Sigma: 0.06, FlatClip: flat},
				Seed:        42,
				ValExamples: 150,
				EvalEvery:   100,
			})
			if err != nil {
				b.Fatal(err)
			}
			acc, _ := hist.FinalAccuracy()
			b.ReportMetric(acc, "final-acc")
		}
	}
	b.Run("layer-clip", func(b *testing.B) { run(b, false) })
	b.Run("flat-clip", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationDecaySchedules compares clipping-decay schedules for
// Fed-CDP(decay), reporting final accuracy.
func BenchmarkAblationDecaySchedules(b *testing.B) {
	schedules := map[string]dp.ClipPolicy{
		"fixed":  dp.FixedClip{C: 4},
		"linear": dp.LinearDecay{From: 6, To: 2},
		"exp":    dp.ExpDecay{From: 6, Rate: 0.9, Min: 2},
		"step":   dp.StepDecay{From: 6, Factor: 0.5, Every: 5, Min: 2},
	}
	for name, policy := range schedules {
		policy := policy
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec, _ := dataset.Get("mnist")
				ds := dataset.New(spec, 42)
				hist, err := fl.Run(fl.Config{
					Data: ds, Model: spec.ModelSpec(),
					K: 12, Kt: 6, Rounds: 12,
					Round:       fl.RoundConfig{BatchSize: 5, LocalIters: 20, LR: spec.LR},
					Strategy:    core.FedCDP{Clip: policy, Sigma: 0.06},
					Seed:        42,
					ValExamples: 150,
					EvalEvery:   100,
				})
				if err != nil {
					b.Fatal(err)
				}
				acc, _ := hist.FinalAccuracy()
				b.ReportMetric(acc, "final-acc")
			}
		})
	}
}

// BenchmarkAblationAttackOptimizer compares L-BFGS (the paper's choice)
// against Adam on the same type-2 reconstruction, reporting the distance.
func BenchmarkAblationAttackOptimizer(b *testing.B) {
	spec, _ := dataset.Get("mnist")
	ds := dataset.New(spec, 3)
	x, y := ds.Client(0).Get(0)
	m := attack.NewMLP([]int{spec.Features, 32, spec.Classes}, attack.ActSigmoid, tensor.NewRNG(3))
	_, gw, gb := m.Gradients(x, y)

	for _, opt := range []string{attack.OptLBFGS, attack.OptAdam} {
		opt := opt
		b.Run(opt, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := attack.Reconstruct(m, gw, gb, []int{y}, []*tensor.Tensor{x},
					attack.Config{Seed: 3, Optimizer: opt, MaxIters: 100})
				b.ReportMetric(res.Distance, "distance")
				b.ReportMetric(float64(res.Iterations), "iters")
			}
		})
	}
}

// --- Micro-benches for the performance-critical primitives ---

// BenchmarkGEMM measures the blocked MatMul kernel at a representative
// square size (the batched engine's workhorse).
func BenchmarkGEMM(b *testing.B) {
	rng := tensor.NewRNG(1)
	a := tensor.New(128, 128)
	c := tensor.New(128, 128)
	dst := tensor.New(128, 128)
	rng.FillUniform(a, -1, 1)
	rng.FillUniform(c, -1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(dst, a, c)
	}
}

// BenchmarkConvForwardBackward compares the per-example scalar convolution
// (reference) against the im2col+GEMM batched engine on the paper CNN's
// first conv layer at the MNIST benchmark batch size. The acceptance bar
// for the engine is ≥3× on forward+backward.
func BenchmarkConvForwardBackward(b *testing.B) {
	const batch = 5
	rng := tensor.NewRNG(1)
	xs := make([]*tensor.Tensor, batch)
	for i := range xs {
		xs[i] = tensor.New(1, 28, 28)
		rng.FillUniform(xs[i], 0, 1)
	}

	b.Run("naive-per-example", func(b *testing.B) {
		conv := nn.NewConv2D(1, 28, 28, 8, 5, 2, 2, tensor.NewRNG(2))
		grad := tensor.New(conv.OutLen())
		tensor.NewRNG(3).FillUniform(grad, -1, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			conv.ZeroGrads()
			for _, x := range xs {
				conv.Forward(x)
				conv.Backward(grad)
			}
		}
	})
	b.Run("im2col-batched", func(b *testing.B) {
		conv := nn.NewConv2D(1, 28, 28, 8, 5, 2, 2, tensor.NewRNG(2))
		arena := tensor.NewArena()
		xb := nn.Stack(arena, nil, xs)
		gradB := tensor.New(batch, conv.OutLen())
		tensor.NewRNG(3).FillUniform(gradB, -1, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			conv.ZeroGrads()
			conv.ForwardBatch(xb)
			conv.BackwardBatch(gradB)
			conv.AccumGrads()
		}
	})
}

// BenchmarkPerExampleGradExtraction compares full-model per-example gradient
// computation — what every Fed-CDP local iteration pays — between the
// reference path (one forward/backward per example) and the batched engine
// (one batched pass + per-example recovery from the batch buffers), on the
// paper's MNIST CNN at its benchmark batch size.
func BenchmarkPerExampleGradExtraction(b *testing.B) {
	spec, _ := dataset.Get("mnist")
	rng := tensor.NewRNG(2)
	const batch = 5
	xs := make([]*tensor.Tensor, batch)
	ys := make([]int, batch)
	for i := range xs {
		xs[i] = tensor.New(1, 28, 28)
		rng.FillUniform(xs[i], 0, 1)
		ys[i] = i % 10
	}

	b.Run("reference", func(b *testing.B) {
		m := nn.Build(spec.ModelSpec(), tensor.NewRNG(1))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			batchG := tensor.ZerosLike(m.Grads())
			for j, x := range xs {
				_, g := m.ExampleGradient(x, ys[j])
				tensor.AddAllScaled(batchG, 1/float64(batch), g)
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		m := nn.Build(spec.ModelSpec(), tensor.NewRNG(1))
		arena := tensor.NewArena()
		m.UseArena(arena)
		scratch := tensor.ZerosLike(m.Grads())
		batchG := tensor.ZerosLike(m.Grads())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, t := range batchG {
				t.Zero()
			}
			m.BatchGradients(xs, ys, scratch, func(j int, g []*tensor.Tensor) {
				tensor.AddAllScaled(batchG, 1/float64(batch), g)
			})
		}
	})
}

// BenchmarkPerExampleGradientCNN measures one forward/backward pass of the
// paper's MNIST CNN.
func BenchmarkPerExampleGradientCNN(b *testing.B) {
	spec, _ := dataset.Get("mnist")
	m := nn.Build(spec.ModelSpec(), tensor.NewRNG(1))
	x := tensor.New(1, 28, 28)
	tensor.NewRNG(2).FillUniform(x, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ExampleGradient(x, i%10)
	}
}

// BenchmarkSanitize measures clip+noise on CNN-sized gradients across the
// noise engines: the sequential math/rand reference, the fused counter
// kernel (serial), and the sharded counter kernel at GOMAXPROCS workers.
// The acceptance bar for the counter engine is ≥4× over the scalar path on
// ≥8 cores (the parallel sub-benchmark; the serial counter kernel already
// wins by fusing the clip scale into the noise traversal and skipping
// math/rand's stream indirection).
func BenchmarkSanitize(b *testing.B) {
	spec, _ := dataset.Get("mnist")
	m := nn.Build(spec.ModelSpec(), tensor.NewRNG(1))
	grads := tensor.CloneAll(m.Grads())

	b.Run("reference", func(b *testing.B) {
		rng := tensor.NewRNG(2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dp.Sanitize(grads, 4, 6, rng)
		}
	})
	b.Run("counter", func(b *testing.B) {
		noise := tensor.NewCounterRNG(2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dp.SanitizeCounter(grads, 4, 6, noise.Derive(int64(i)))
		}
	})
	b.Run("counter-par", func(b *testing.B) {
		noise := tensor.NewCounterRNG(2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dp.SanitizeCounterPar(grads, 4, 6, noise.Derive(int64(i)), 0)
		}
	})
}

// BenchmarkNoiseEngine establishes the scalar-vs-counter trajectory on the
// two axes the sanitize pipeline stresses: raw Gaussian throughput over a
// model-update-sized buffer, and a full Fed-CDP local iteration (batched
// pass + per-example recovery + fused sanitize of every example). Both
// counter variants are exact — bit-identical at any worker count — so the
// speedup column is free of reproducibility tradeoffs.
func BenchmarkNoiseEngine(b *testing.B) {
	spec, _ := dataset.Get("mnist")
	model := nn.Build(spec.ModelSpec(), tensor.NewRNG(1))
	n := model.NumParams()
	buf := tensor.New(n)

	b.Run(fmt.Sprintf("gauss/reference/n=%d", n), func(b *testing.B) {
		rng := tensor.NewRNG(3)
		for i := 0; i < b.N; i++ {
			rng.AddNormal(buf, 1)
		}
	})
	b.Run(fmt.Sprintf("gauss/counter/n=%d", n), func(b *testing.B) {
		noise := tensor.NewCounterRNG(3)
		for i := 0; i < b.N; i++ {
			noise.AddNormalBulk(buf.Data(), uint64(i)*uint64(n), 1)
		}
	})

	// One Fed-CDP local iteration at the benchmark batch size, per engine.
	iteration := func(b *testing.B, noiseEngine string) {
		m := nn.Build(spec.ModelSpec(), tensor.NewRNG(1))
		arena := tensor.NewArena()
		m.UseArena(arena)
		ds := dataset.New(spec, 1)
		xs, ys := ds.Client(0).Batch(0, spec.BatchSize)
		scratch := tensor.ZerosLike(m.Grads())
		batch := tensor.ZerosLike(m.Grads())
		bufs := make([][]*tensor.Tensor, len(xs))
		for i := range bufs {
			bufs[i] = tensor.ZerosLike(m.Grads())
		}
		rng := tensor.NewRNG(4)
		noise := tensor.NewCounterRNG(4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, t := range batch {
				t.Zero()
			}
			if noiseEngine == fl.NoiseReference {
				m.BatchGradients(xs, ys, scratch, func(j int, g []*tensor.Tensor) {
					dp.Sanitize(g, 4, 6, rng)
					tensor.AddAllScaled(batch, 1/float64(len(xs)), g)
				})
				continue
			}
			m.BatchPass(xs, ys)
			dp.SanitizeBatch(dp.BatchSanitizeJob{
				N:       len(xs),
				Recover: m.ExampleGrads,
				Sanitize: func(j int, g []*tensor.Tensor) {
					dp.SanitizeCounter(g, 4, 6, noise.Derive(int64(i), int64(j)))
				},
				Bufs:   bufs,
				Accum:  batch,
				Weight: 1 / float64(len(xs)),
			})
		}
	}
	b.Run("fedcdp-iter/reference", func(b *testing.B) { iteration(b, fl.NoiseReference) })
	b.Run("fedcdp-iter/counter", func(b *testing.B) { iteration(b, fl.NoiseCounter) })
}

// BenchmarkSimnetScale measures hierarchical simnet deployments along the
// population axis — the scaling story of DESIGN.md's "Hierarchical
// aggregation": K=8 flat legacy (the SimnetRounds baseline shape), K=1,000
// under an 8-shard edge tree, and a K=100,000 / Kt=1,000 / 32-shard
// deployment (the acceptance scenario, 2 rounds at L=1). Every variant
// reports rounds/sec, wire bytes per round (from the fabric's write
// counter), and the post-run live heap — the scheduler's memory footprint
// is O(worker pool + cohort cursors), not O(K), which is what lets the
// 100k row exist at all.
func BenchmarkSimnetScale(b *testing.B) {
	for _, tc := range []struct {
		name   string
		cfg    core.Config
		rounds int
	}{
		{"flat/k=8", core.Config{
			Dataset: "cancer", Method: core.MethodFedCDP,
			K: 8, Kt: 4, Rounds: 3, LocalIters: 2,
			Sigma: 0.06, Seed: 42, ValExamples: 40, EvalEvery: 100,
		}, 3},
		{"tree/k=1000", core.Config{
			Dataset: "cancer", Method: core.MethodFedCDP,
			K: 1000, Kt: 100, Rounds: 3, LocalIters: 2,
			Sigma: 0.06, Seed: 42, ValExamples: 40, EvalEvery: 100,
			Shards: 8, Sampler: fl.SamplerFloyd, Codec: fl.CodecBinary,
		}, 3},
		{"tree/k=100000", core.Config{
			Dataset: "cancer", Method: core.MethodFedCDP,
			K: 100_000, Kt: 1000, Rounds: 2, LocalIters: 1,
			Sigma: 0.06, Seed: 42, ValExamples: 40, EvalEvery: 100,
			Shards: 32, Sampler: fl.SamplerFloyd, Codec: fl.CodecBinary,
		}, 2},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var wire int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.RunSimnet(tc.cfg)
				if err != nil {
					b.Fatal(err)
				}
				wire = 0
				for _, r := range res.Rounds {
					wire += r.WireBytes
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(tc.rounds*b.N)/b.Elapsed().Seconds(), "rounds/sec")
			b.ReportMetric(float64(wire)/float64(tc.rounds), "wire-B/round")
			runtime.GC()
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			b.ReportMetric(float64(ms.HeapAlloc)/(1<<20), "live-heap-MB")
		})
	}
}

// BenchmarkRDPAccountant measures a full ε computation over the default
// order grid at the paper's MNIST scale (q=0.01, σ=6, 10000 steps).
func BenchmarkRDPAccountant(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eps, _ := accountant.Epsilon(0.01, 6, 10000, 1e-5, nil)
		if eps <= 0 {
			b.Fatal("epsilon must be positive")
		}
	}
}

// BenchmarkGradMatch measures one attack-objective evaluation (value +
// input gradient) on the MNIST attack MLP.
func BenchmarkGradMatch(b *testing.B) {
	spec, _ := dataset.Get("mnist")
	m := attack.NewMLP([]int{spec.Features, 32, spec.Classes}, attack.ActSigmoid, tensor.NewRNG(1))
	x := tensor.New(spec.Features)
	tensor.NewRNG(2).FillUniform(x, 0, 1)
	_, gw, gb := m.Gradients(x, 3)
	cand := x.Clone()
	tensor.NewRNG(4).AddNormal(cand, 0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.GradMatch([]*tensor.Tensor{cand}, []int{3}, gw, gb)
	}
}

// BenchmarkFederatedRound measures one complete non-private federated round
// (8 clients in parallel, 20 local iterations each) on synthetic MNIST.
func BenchmarkFederatedRound(b *testing.B) {
	spec, _ := dataset.Get("mnist")
	ds := dataset.New(spec, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := fl.Run(fl.Config{
			Data: ds, Model: spec.ModelSpec(),
			K: 16, Kt: 8, Rounds: 1,
			Round:       fl.RoundConfig{BatchSize: 5, LocalIters: 20, LR: spec.LR},
			Strategy:    core.NonPrivate{},
			Seed:        int64(i),
			ValExamples: 10,
			EvalEvery:   100,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamingVsBarrierAggregation contrasts the server's update
// memory across cohort sizes: barrier aggregation materializes every one
// of the Kt updates before folding (O(Kt × model) — watch B/op grow
// linearly in kt), while the streaming fold passes each update through
// one reused scratch buffer into an O(model) accumulator (B/op and the
// update-KB metric stay flat in kt). The update-KB metric is the update
// state each path must hold live at once.
func BenchmarkStreamingVsBarrierAggregation(b *testing.B) {
	spec, _ := dataset.Get("mnist")
	m := nn.Build(spec.ModelSpec(), tensor.NewRNG(1))
	params := m.Params()
	modelFloats := 0
	for _, p := range params {
		modelFloats += p.Len()
	}
	// fill stands in for "an update arrives": deterministic, cheap, and
	// identical work on both paths.
	fill := func(ts []*tensor.Tensor, k int) {
		for _, t := range ts {
			data := t.Data()
			for j := range data {
				data[j] = float64((k+j)%7) - 3
			}
		}
	}
	for _, kt := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("barrier/kt=%d", kt), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				updates := make([][]*tensor.Tensor, kt)
				for k := range updates {
					updates[k] = tensor.ZerosLike(params)
					fill(updates[k], k)
				}
				fl.AggregateFedSGD(params, updates)
			}
			b.ReportMetric(float64(kt*modelFloats*8)/1024, "update-KB")
		})
		b.Run(fmt.Sprintf("streaming/kt=%d", kt), func(b *testing.B) {
			b.ReportAllocs()
			agg := fl.NewFedSGD()
			scratch := tensor.ZerosLike(params)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				agg.Begin(params)
				for k := 0; k < kt; k++ {
					fill(scratch, k)
					agg.Fold(scratch)
				}
				agg.Commit(params)
			}
			b.ReportMetric(float64(modelFloats*8)/1024, "update-KB")
		})
	}
}

// BenchmarkSparseWireEncoding measures gob encoding of a CNN-sized update
// at several densities, dense TensorWire vs SparseTensorWire, reporting
// the encoded bytes. Gob already packs a zero float64 into one byte, so
// the sparse win is ~1.5× at 10% density and >5× at DSSGD's θ_u = 0.01
// setting — the wire-B metrics quantify the crossover.
func BenchmarkSparseWireEncoding(b *testing.B) {
	const n = 100000
	rng := tensor.NewRNG(3)
	for _, density := range []float64{1, 0.1, 0.01} {
		src := tensor.New(n)
		step := int(1 / density)
		for i := 0; i < n; i += step {
			src.Data()[i] = rng.Float64()*2 - 1
		}
		ts := []*tensor.Tensor{src}
		b.Run(fmt.Sprintf("dense/density=%v", density), func(b *testing.B) {
			var buf bytes.Buffer
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := gob.NewEncoder(&buf).Encode(fl.WireFromTensors(ts)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(buf.Len()), "wire-B")
		})
		b.Run(fmt.Sprintf("sparse/density=%v", density), func(b *testing.B) {
			var buf bytes.Buffer
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := gob.NewEncoder(&buf).Encode(fl.SparseFromTensors(ts)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(buf.Len()), "wire-B")
		})
	}
}

// BenchmarkGobTransportRound measures a full TCP round trip of a federated
// round over loopback with gob encoding.
func BenchmarkGobTransportRound(b *testing.B) {
	spec, _ := dataset.Get("cancer")
	ds := dataset.New(spec, 1)
	model := nn.Build(spec.ModelSpec(), tensor.NewRNG(1))
	cfg := fl.RoundConfig{BatchSize: 4, LocalIters: 2, LR: 0.1, TotalRounds: 1}
	srv, err := fl.NewRoundServer("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := make(chan error, 1)
		go func() {
			done <- fl.RunRemoteClient(srv.Addr(), 0, core.NonPrivate{}, ds.Client(0), spec.ModelSpec(), 1)
		}()
		if _, err := srv.RunRound(i, model.Params(), cfg, 1); err != nil {
			b.Fatal(err)
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimnetRounds measures full-deployment federated rounds over the
// in-memory simnet fabric — RoundServer on a fabric listener, every cohort
// member a real RPC client goroutine, virtual time — the substrate the
// fault matrix and every future chaos/scale test stands on, under both
// wire codecs. The null/gob row is the BENCH_simnet.json baseline
// (rounds/sec of pure fabric + protocol overhead); the faulted plans add
// the acceptance scenario's chaos, whose latency costs zero wall time by
// construction; the binary rows measure what the framed codec (see
// DESIGN.md, "Wire codec") buys once gob's per-session reflection and
// type-descriptor retransmission leave the protocol path.
func BenchmarkSimnetRounds(b *testing.B) {
	for _, tc := range []struct{ name, plan, codec string }{
		{"null/gob", "", ""},
		{"null/binary", "", fl.CodecBinary},
		{"faulted/gob", "drop=0.2,crash=2,restart=1,latency=10ms,jitter=5ms", ""},
		{"faulted/binary", "drop=0.2,crash=2,restart=1,latency=10ms,jitter=5ms", fl.CodecBinary},
	} {
		b.Run(tc.name, func(b *testing.B) {
			const rounds = 3
			cfg := core.Config{
				Dataset: "cancer", Method: core.MethodFedCDP,
				K: 8, Kt: 4, Rounds: rounds, LocalIters: 2,
				Sigma: 0.06, Seed: 42, ValExamples: 40, EvalEvery: 100,
				Faults: tc.plan, Codec: tc.codec,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.RunSimnet(cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rounds*b.N)/b.Elapsed().Seconds(), "rounds/sec")
		})
	}
}

// BenchmarkChurn prices the open-world population engine against the
// closed world it generalizes: the same six-round Fed-CDP federation with
// no population clauses (static fast path — global accountant, legacy
// cohort draws), with one-shot arrivals/departures, and under memoryless
// churn (both on the dynamic path: per-round active sets, active-set
// cohort draws, per-user ε ledgers). Baselines in BENCH_churn.json; the
// tables -exp bench gate keeps the open-world machinery from taxing
// closed-world runs.
func BenchmarkChurn(b *testing.B) {
	for _, tc := range []struct{ name, plan string }{
		{"closed", ""},
		{"events", "join=2@2,leave=2@4"},
		{"churn", "churn=0.25"},
	} {
		b.Run(tc.name, func(b *testing.B) {
			const rounds = 6
			cfg := core.Config{
				Dataset: "cancer", Method: core.MethodFedCDP,
				K: 10, Kt: 4, Rounds: rounds, LocalIters: 2,
				Sigma: 0.06, Seed: 42, ValExamples: 40, EvalEvery: 100,
				Population: tc.plan,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rounds*b.N)/b.Elapsed().Seconds(), "rounds/sec")
		})
	}
}

// BenchmarkRobustAgg prices the robust aggregation folds against the
// streaming FedSGD mean along the cohort-size axis: the robust rules
// buffer raw updates (O(Kt·model) memory) and compute order statistics at
// Commit — median and trimmed mean sort per coordinate (trimmed also sums
// survivors exactly), Krum scores O(Kt²) pairwise distances. Baselines in
// BENCH_robust.json.
func BenchmarkRobustAgg(b *testing.B) {
	const dim = 4096
	for _, kt := range []int{8, 32} {
		rng := tensor.Split(42, 9)
		updates := make([][]*tensor.Tensor, kt)
		for i := range updates {
			u := tensor.New(dim)
			rng.FillNormal(u, 0, 1)
			updates[i] = []*tensor.Tensor{u}
		}
		base := tensor.New(dim)
		rng.FillNormal(base, 0, 1)
		for _, rule := range []string{fl.AggFedSGD, fl.AggMedian, "trimmed:0.34", "krum:2"} {
			b.Run(fmt.Sprintf("%s/kt%d", rule, kt), func(b *testing.B) {
				params := []*tensor.Tensor{base.Clone()}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					agg, err := fl.NewAggregator(rule)
					if err != nil {
						b.Fatal(err)
					}
					agg.Begin(params)
					for _, u := range updates {
						agg.Fold(u)
					}
					agg.Commit(params)
				}
				b.ReportMetric(float64(kt*b.N)/b.Elapsed().Seconds(), "folds/sec")
			})
		}
	}
}
